"""The ``Session`` front door: one connection-style API for the repo.

The paper's dichotomy (Theorem 17) and the division lower bound
(Proposition 26) are statements about *plan choice*, and the engine
(:mod:`repro.engine`) is the machinery that acts on them.  Before this
module, callers reached that machinery through four inconsistent entry
points — ``repro.engine.run``/``explain``, :func:`repro.algebra.
evaluator.evaluate`, a hand-managed :class:`~repro.engine.executor.
Executor`, and ad-hoc CLI helpers — each re-threading
:class:`~repro.engine.planner.PlannerOptions` by hand.  A
:class:`Session` replaces all of them:

* it is bound to one :class:`~repro.data.database.Database` and owns
  one :class:`~repro.engine.executor.Executor` (hash indexes,
  statistics, cost model, plan memo — amortized across every query in
  the session, version-token guarded);
* :meth:`Session.query` returns a :class:`PreparedQuery` — parsed
  once, planned lazily against the *current* statistics state, run and
  explained any number of times;
* it owns the ROADMAP's **cross-query result cache**
  (:class:`~repro.engine.executor.ResultCache`): results keyed by
  ``(plan fingerprint, planner options, version token)``, LRU-evicted
  against a byte budget, invalidated whenever the version token moves.
  A repeated identical query — or a structurally shared one that plans
  to the same physical shape — is served with **zero** physical
  operator executions; a mutation between runs is detected before
  planning, so the cold re-run recomputes against fresh contents
  instead of raising :class:`~repro.errors.StaleDataError`;
* every run leaves an :class:`ExecutionReport` in
  :attr:`Session.last_report`: row count, cache hit/miss counters, and
  the :class:`~repro.engine.executor.ExecutionStats` with per-operator
  estimated-vs-actual rows and the peak rows in flight.

Typical use::

    from repro.session import Session

    session = Session(db)
    prepared = session.query("project[1](R join[2=1] S)")
    rows = prepared.run()          # planned + executed
    rows = prepared.run()          # served from the result cache
    print(prepared.explain(costs=True))
    print(session.last_report.render())

The old entry points remain as thin shims over this module —
``repro.engine.run(expr, db)`` and plain ``evaluate(expr, db)`` both
route through the shared per-database session returned by
:func:`session_for` — and the deprecation table in ``docs/session.md``
maps each old call to its Session form.  The implicit shared sessions
keep result caching **disabled** so that repeated ``evaluate()`` calls
still measure real work (the documented contract the benchmarks rely
on); an explicitly constructed ``Session`` enables caching by default.

The semijoin-algebra line of related work (Leinders et al., "On the
expressive power of semijoin queries") motivates keeping the structural
evaluator reachable as an oracle behind the same surface:
:meth:`Session.oracle` evaluates an expression *as written*, bypassing
every engine rewrite, which is what the differential tests compare
engine results against.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.algebra.ast import Expr, Rel
from repro.algebra.evaluator import Relation
from repro.data.database import Database
from repro.data.schema import Schema
from repro.engine.executor import (
    DEFAULT_CACHE_BYTES,
    ExecutionStats,
    Executor,
    ResultCache,
)
from repro.engine.plan import PlanNode
from repro.engine.planner import DEFAULT_OPTIONS, PlannerOptions
from repro.errors import SchemaError

__all__ = [
    "ExecutionReport",
    "PreparedQuery",
    "Session",
    "run",
    "session_for",
]


@dataclass(frozen=True)
class ExecutionReport:
    """What one :meth:`Session` run did, observable after the fact.

    ``stats`` is the executor's :class:`~repro.engine.executor.
    ExecutionStats` for this query alone (a fresh, empty record when
    the result came from the cache — zero operator executions is the
    cache's contract, and :meth:`operators_executed` asserts it);
    the ``cache_*`` fields snapshot the session's result-cache
    counters at completion time.
    """

    rows: int
    cached: bool
    fingerprint: str
    options: PlannerOptions
    stats: ExecutionStats
    cache_hits: int
    cache_misses: int
    cache_entries: int
    cache_bytes: int
    #: Whether the session's result cache served lookups at all;
    #: disabled caches report bypassed lookups, not misses.
    cache_enabled: bool = True
    cache_disabled_lookups: int = 0
    #: Whether planning this run discarded a memoized plan because the
    #: feedback ledger's observed estimator error crossed the query's
    #: ``replan_threshold`` (always False without a threshold).
    replanned: bool = False

    def operators_executed(self) -> int:
        """How many physical operators ran (0 for a cache hit)."""
        return len(self.stats.node_rows)

    def render(self) -> str:
        """Human-readable report: cache outcome + the stats report.

        Parallel operators show up through the stats report: each
        :class:`~repro.engine.parallel.ParallelRun` renders its batch
        counts plus per-worker batch assignments and in-worker
        wall-clock seconds.
        """
        source = "result cache (hit)" if self.cached else "executed"
        if self.replanned:
            source += " [re-planned: estimator error crossed threshold]"
        if self.cache_enabled:
            cache_line = (
                f"result cache     : {self.cache_hits} hit(s), "
                f"{self.cache_misses} miss(es), {self.cache_entries} "
                f"entr(y/ies), ~{self.cache_bytes} byte(s)"
            )
        else:
            cache_line = (
                "result cache     : off "
                f"({self.cache_disabled_lookups} bypassed lookup(s))"
            )
        lines = [
            f"rows             : {self.rows}",
            f"source           : {source}",
            cache_line,
            self.stats.report(),
        ]
        return "\n".join(lines)


class PreparedQuery:
    """A query parsed once, planned lazily, runnable many times.

    Created by :meth:`Session.query`.  The logical expression is fixed
    at construction; the physical plan is *not* — every :meth:`run` and
    :meth:`explain` asks the session's executor for the plan valid
    under the current statistics state (the executor memoizes plans per
    ``(expression, options)`` and drops them when the version token
    moves, so re-planning only happens when the contents changed).
    """

    def __init__(
        self,
        session: "Session",
        expr: Expr,
        text: str | None = None,
        options: PlannerOptions | None = None,
    ) -> None:
        self.session = session
        self.expr = expr
        self.text = text
        self._options = options
        #: The report of this query's most recent :meth:`run`.
        self.last_report: ExecutionReport | None = None

    @property
    def options(self) -> PlannerOptions:
        """Per-query options, falling back to the session's."""
        return self._options if self._options is not None else (
            self.session.options
        )

    def plan(self) -> PlanNode:
        """The physical plan under the current statistics state."""
        return self.session.executor.plan(self.expr, self.options)

    def run(self) -> Relation:
        """Execute (or serve from the result cache); returns the rows."""
        return self.session._run(self)

    def explain(
        self,
        costs: bool = False,
        analyze: bool = False,
        feedback: bool = False,
    ) -> str:
        """Render the current plan (the one :meth:`run` would execute).

        ``feedback=True`` appends the catalog's estimator-error ledger
        report.  The plan is fetched *first*, on its own statement:
        :meth:`plan` runs the executor's version check, which may
        replace the cost model — reading ``executor.cost_model`` before
        that check would render costs priced against pre-mutation
        statistics (the stale-explain bug this ordering guards against;
        regression-tested in ``tests/test_feedback.py``).
        """
        from repro.engine.planner import explain as explain_plan

        plan = self.plan()  # runs check_version; may swap the cost model
        executor = self.session.executor
        rendered = explain_plan(
            self.expr,
            options=self.options,
            schema=self.session.schema,
            analyze=analyze,
            plan=plan,
            costs=costs,
            catalog=executor.catalog,
            cost_model=executor.cost_model,
        )
        if feedback:
            rendered += "\n" + executor.catalog.feedback.report()
        return rendered

    def stats(self) -> ExecutionStats | None:
        """The last run's :class:`ExecutionStats` (None before any run).

        A cache-served run reports a fresh, empty record: zero
        operator executions is precisely what the cache guarantees.
        """
        report = self.last_report
        return report.stats if report is not None else None


class Session:
    """A connection-style front door to the whole engine.

    Parameters
    ----------
    db:
        The database this session is bound to.  All caches are
        per-database and guarded by
        :meth:`~repro.data.database.Database.version_token`.
    options:
        Session-level :class:`~repro.engine.planner.PlannerOptions`,
        applied to every query unless overridden per call.
    cache_results:
        The result-cache knob.  ``True`` (default) serves repeated
        queries against unchanged contents from the cross-query result
        cache; ``False`` records misses but never stores or serves.
    cache_bytes:
        LRU byte budget for cached results (estimated bytes of the
        cached row tuples; see
        :class:`~repro.engine.executor.ResultCache`).
    backend:
        Storage the session's executor reads relations from: a kind
        name from :data:`~repro.storage.backend.BACKEND_KINDS`
        (``"memory"``, ``"shm"``, ``"mmap"``), an already-open
        :class:`~repro.storage.backend.Backend` over the same ``db``,
        or ``None`` (default) to take ``options.backend``.  The
        resolved kind is reflected back into :attr:`Session.options`
        so prepared queries, cache keys, and the cost model's
        transport pricing all agree on where the bytes live.  The shm
        and mmap backends own real OS resources — close the session
        (or use it as a context manager) to release them.
    """

    def __init__(
        self,
        db: Database,
        options: PlannerOptions | None = None,
        cache_results: bool = True,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        backend=None,
    ) -> None:
        from dataclasses import replace

        self.db = db
        options = options if options is not None else DEFAULT_OPTIONS
        self._executor = Executor(
            db,
            results=ResultCache(
                enabled=cache_results, byte_budget=cache_bytes
            ),
            backend=backend if backend is not None else options.backend,
        )
        # One source of truth: whatever backend the executor actually
        # opened is what session-level options advertise (an explicit
        # ``backend=`` argument wins over ``options.backend``).
        if options.backend != self._executor.backend.kind:
            options = replace(
                options, backend=self._executor.backend.kind
            )
        self.options = options
        #: The report of the session's most recent run (any query).
        self.last_report: ExecutionReport | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has released the storage backend."""
        return self._executor.backend.closed

    def close(self) -> None:
        """Release the storage backend (idempotent).

        The shm backend's segments and the mmap backend's spill files
        are real OS resources; this gives them back.  Queries on a
        closed session raise :class:`~repro.errors.SchemaError`.
        """
        self._executor.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def executor(self) -> Executor:
        """The session's executor (caches, statistics, cost model)."""
        return self._executor

    @property
    def schema(self) -> Schema:
        return self.db.schema

    @property
    def result_cache(self) -> ResultCache:
        """The session's cross-query result cache (counters included)."""
        return self._executor.results

    @property
    def feedback(self):
        """The catalog's estimator-error ledger (survives mutations)."""
        return self._executor.catalog.feedback

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def parse(self, text: str) -> Expr:
        """Parse query text against the session's schema."""
        from repro.algebra.parser import parse

        return parse(text, self.schema)

    def query(
        self,
        query: "str | Expr",
        options: PlannerOptions | None = None,
    ) -> PreparedQuery:
        """Prepare a query: parse once, plan lazily per stats state.

        ``query`` is either expression text (parsed against the
        session's schema) or an already-built logical
        :class:`~repro.algebra.ast.Expr`.  ``options`` overrides the
        session-level options for this query only.  A per-query
        ``options.backend`` that disagrees with the session's actual
        backend is coerced to the session's kind: storage is a
        session-construction decision, and cache keys must not claim
        a transport the executor never used.
        """
        if options is not None and (
            options.backend != self._executor.backend.kind
        ):
            from dataclasses import replace

            options = replace(
                options, backend=self._executor.backend.kind
            )
        if isinstance(query, str):
            return PreparedQuery(self, self.parse(query), query, options)
        if not isinstance(query, Expr):
            raise SchemaError(
                "Session.query needs expression text or an Expr, got "
                f"{type(query).__name__}"
            )
        return PreparedQuery(self, query, None, options)

    def run(
        self,
        query: "str | Expr",
        options: PlannerOptions | None = None,
    ) -> Relation:
        """Prepare and run in one step; returns a frozenset of rows."""
        return self.query(query, options).run()

    def explain(
        self,
        query: "str | Expr",
        costs: bool = False,
        analyze: bool = False,
        feedback: bool = False,
        options: PlannerOptions | None = None,
    ) -> str:
        """Render the plan the session would execute for ``query``."""
        return self.query(query, options).explain(
            costs=costs, analyze=analyze, feedback=feedback
        )

    def oracle(self, query: "str | Expr") -> Relation:
        """Evaluate *as written* with the structural evaluator.

        Bypasses every engine rewrite (and the result cache): the
        memoizing tree-walk computes each logical sub-expression
        exactly as the expression states it — the Definition 16
        semantics the engine's plans are differentially tested
        against.
        """
        from repro.algebra.evaluator import evaluate

        expr = self.parse(query) if isinstance(query, str) else query
        return evaluate(expr, self.db, use_engine=False)

    # ------------------------------------------------------------------
    # Division (the uniform validation path shared with the CLI)
    # ------------------------------------------------------------------

    def divide(
        self,
        dividend: str = "R",
        divisor: str = "S",
        algorithm: str = "hash",
        eq: bool = False,
    ) -> frozenset:
        """Relational division ``dividend(A,B) ÷ divisor(B)``.

        ``algorithm`` is ``"engine"`` (plan the classic RA expression —
        or the §5 γ plan for ``eq=True`` — through the session, letting
        the planner collapse it to the linear
        :class:`~repro.engine.plan.DivisionOp`), ``"reference"`` (the
        brute-force oracle), or a name from the direct-algorithm zoo
        (:data:`~repro.setjoins.division.DIVISION_ALGORITHMS`).

        Operands are validated against the *schema* before any
        algorithm runs, so every path fails identically: an unknown
        name raises :class:`~repro.errors.UnknownRelationError` and a
        wrong arity raises :class:`~repro.errors.SchemaError` — even
        when the relation happens to be empty, where the direct
        algorithms' data-driven row checks used to pass vacuously
        while the engine path rejected the expression shape.
        """
        from repro.setjoins.division import (
            DIVISION_ALGORITHMS,
            DIVISION_EQ_ALGORITHMS,
            classic_division_expr,
            divide_reference,
            divide_reference_eq,
        )

        dividend_arity = self.schema[dividend]  # UnknownRelationError
        divisor_arity = self.schema[divisor]
        if dividend_arity != 2 or divisor_arity != 1:
            raise SchemaError(
                "division needs a binary dividend and a unary divisor; "
                f"got {dividend!r}/{dividend_arity} and "
                f"{divisor!r}/{divisor_arity}"
            )
        if algorithm == "engine":
            if eq:
                from repro.extended.division_plan import (
                    equality_division_plan,
                )

                expr = equality_division_plan(
                    Rel(dividend, 2), Rel(divisor, 1)
                )
            else:
                expr = classic_division_expr(
                    Rel(dividend, 2), Rel(divisor, 1)
                )
            return frozenset(a for (a,) in self.run(expr))
        if algorithm == "reference":
            fn = divide_reference_eq if eq else divide_reference
        else:
            registry = (
                DIVISION_EQ_ALGORITHMS if eq else DIVISION_ALGORITHMS
            )
            try:
                fn = registry[algorithm]
            except KeyError:
                raise SchemaError(
                    f"unknown division algorithm {algorithm!r}; expected "
                    "'engine', 'reference', or one of "
                    f"{sorted(registry)}"
                ) from None
        return fn(self.db[dividend], self.db[divisor])

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _run(self, prepared: PreparedQuery) -> Relation:
        executor = self._executor
        # Planning re-checks the version token first, so a mutation
        # between runs invalidates every cache (results included)
        # *here* — the subsequent cold run computes against the new
        # contents instead of raising StaleDataError mid-flight.
        plan = executor.plan(prepared.expr, prepared.options)
        replanned = executor.last_plan_replanned
        result, cached = executor.execute_cached(plan, prepared.options)
        if cached:
            stats = ExecutionStats()
        else:
            stats = executor.stats
            # Per-query stats and result memo: cached cross-query reuse
            # lives in the bounded ResultCache, not pinned in the memo.
            executor.reset_query_state()
        cache = executor.results
        report = ExecutionReport(
            rows=len(result),
            cached=cached,
            fingerprint=plan.fingerprint(),
            options=prepared.options,
            stats=stats,
            cache_hits=cache.hits,
            cache_misses=cache.misses,
            cache_entries=len(cache),
            cache_bytes=cache.total_bytes,
            cache_enabled=cache.enabled,
            cache_disabled_lookups=cache.disabled_lookups,
            replanned=replanned,
        )
        prepared.last_report = report
        self.last_report = report
        return result


# ----------------------------------------------------------------------
# Implicit shared sessions (the shim layer's backing store)
# ----------------------------------------------------------------------

#: Sessions bound to recently seen databases, so back-to-back
#: ``evaluate()``/``engine.run()`` calls against the same database
#: share hash-index builds, statistics, and plans even when the caller
#: manages no session.  Result caching is **disabled** on these —
#: plain calls keep the documented "each call recomputes" contract the
#: timing benchmarks rely on; construct a ``Session`` explicitly to
#: opt into result caching.  Strong references, hence the small FIFO
#: bound; a session whose indexes outgrow the row bound is dropped
#: rather than pinned.
_SESSION_CACHE_SIZE = 8
_SESSION_ROWS_BOUND = 200_000
_sessions: "OrderedDict[Database, Session]" = OrderedDict()


def session_for(db: Database) -> Session:
    """The shared implicit session for ``db`` (result caching off)."""
    session = _sessions.get(db)
    if session is None:
        session = Session(db, cache_results=False)
        _sessions[db] = session
        while len(_sessions) > _SESSION_CACHE_SIZE:
            _sessions.popitem(last=False)
    else:
        _sessions.move_to_end(db)
    return session


def run(
    expr: Expr,
    db: Database,
    options: PlannerOptions | None = None,
) -> Relation:
    """Plan and execute ``expr`` on ``db`` via the shared session.

    The one-shot convenience behind ``evaluate(expr, db)`` and the
    ``repro.engine.run`` shim.  Cost-based planning, hash-index and
    statistics reuse, and version-token invalidation all come from the
    shared per-database session; results are recomputed per call (see
    :func:`session_for`).
    """
    session = session_for(db)
    result = session.run(expr, options)
    if session.executor.indexes.rows_indexed > _SESSION_ROWS_BOUND:
        _sessions.pop(db, None)
    return result
