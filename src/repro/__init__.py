"""repro — reproduction of Leinders & Van den Bussche (PODS 2005 / JCSS 2007),
"On the complexity of division and set joins in the relational algebra".

The package implements the paper's full formal apparatus as executable,
tested code:

* :mod:`repro.session` — the ``Session`` front door: prepared queries,
  execution reports, and the cross-query result cache;
* :mod:`repro.data` — ordered universes, schemas, databases, C-stored tuples;
* :mod:`repro.algebra` — the relational algebra RA and semijoin algebra SA;
* :mod:`repro.logic` — the guarded fragment GF and the Theorem 8 translations;
* :mod:`repro.bisim` — C-guarded bisimulations (Definitions 9–11);
* :mod:`repro.core` — free values, the Lemma 24 blow-up, the dichotomy
  classifier and the Theorem 18 compiler to SA=;
* :mod:`repro.setjoins` — division and set joins with the algorithm zoo the
  paper's introduction surveys;
* :mod:`repro.extended` — RA + grouping/aggregation and the linear division
  plan of Section 5;
* :mod:`repro.workloads`, :mod:`repro.bench` — generators and the experiment
  harness regenerating every figure and theorem-level claim.
"""

__version__ = "1.0.0"

from repro.data import Database, Schema, database
from repro.algebra import Condition, Expr, evaluate, parse, rel, to_text, trace
from repro.session import PreparedQuery, Session

__all__ = [
    "__version__",
    "Database",
    "PreparedQuery",
    "Schema",
    "Session",
    "database",
    "Condition",
    "Expr",
    "evaluate",
    "parse",
    "rel",
    "to_text",
    "trace",
]
