"""Command-line interface: ``repro`` (or ``python -m repro``).

Subcommands::

    repro eval     -d db.json 'project[1](R join[2=1] S)'   # session-backed
    repro eval     -d db.json --stats 'R join[2=1] S'       # + exec report
    repro explain  'R cartesian S' --schema 'R:2,S:1'       # physical plan
    repro explain  -d db.json --costs 'R join[2=1] S'       # + cost estimates
    repro eval     -d db.json --partition-budget 500 'R join[2=1] S'
    repro eval     -d db.json --max-workers 4 'R join[2=1] S'
    repro trace    -d db.json 'project[1](R) cartesian S'
    repro classify -d db.json 'R cartesian S'           # db optional
    repro compile  'R join[2=1] S' --schema 'R:2,S:1'
    repro divide   -d db.json --dividend R --divisor S [--algorithm hash]
    repro bisim    -a left.json -b right.json --left-tuple 1 --right-tuple 1
    repro bench    [EXPERIMENT_ID ...]
    repro serve    --scenario mixed_read_heavy --stats     # workload lab
    repro serve    --spec workload.json --budget 5000 --emit out.json

``eval``, ``explain``, ``divide``, and ``optimize`` build one
:class:`~repro.session.Session` from the shared session flags
(``--partition-budget``, ``--max-workers``, ``--no-costs``,
``--no-reorder-joins``, ``--no-partitions``), applied uniformly;
contradictory combinations are
rejected up front.  Expressions use the textual syntax of
:mod:`repro.algebra.parser`; the schema comes from the database file or
from ``--schema 'R:2,S:1'``.
"""

from __future__ import annotations

import argparse
import sys

from repro.algebra.evaluator import evaluate
from repro.algebra.parser import parse
from repro.algebra.printer import to_ascii, to_text
from repro.algebra.trace import trace
from repro.bisim.bisimulation import are_bisimilar
from repro.core.compile_sa import compile_to_sa
from repro.core.dichotomy import analyze
from repro.data.schema import Schema
from repro.data.universe import INTEGERS, RATIONALS, STRINGS
from repro.errors import ReproError
from repro.io.json_io import load_database
from repro.setjoins.division import DIVISION_ALGORITHMS

_UNIVERSES = {
    "integers": INTEGERS,
    "rationals": RATIONALS,
    "strings": STRINGS,
}


def _load_database(path: str):
    """Load a database file, reporting I/O failures as CLI errors.

    Only file loading is wrapped: an unreadable ``--database`` path is
    a user error (clean ``error:`` + exit 2), while I/O failures on
    output (e.g. a closed pipe) must keep their default behaviour.
    """
    try:
        return load_database(path)
    except OSError as error:
        raise ReproError(f"cannot read database {path!r}: {error}") from error


def _parse_schema(text: str) -> Schema:
    entries = {}
    for part in text.split(","):
        name, __, arity = part.partition(":")
        entries[name.strip()] = int(arity)
    return Schema(entries)


def _parse_value(text: str):
    try:
        return int(text)
    except ValueError:
        return text


def _schema_for(args) -> Schema:
    if getattr(args, "database", None):
        return _load_database(args.database).schema
    if getattr(args, "schema", None):
        return _parse_schema(args.schema)
    raise ReproError("provide --database or --schema")


def _session_options(args):
    """PlannerOptions from the shared session flags (None = defaults).

    The planner flags (``--partition-budget``, ``--max-workers``,
    ``--no-costs``, ``--no-reorder-joins``, ``--no-partitions``,
    ``--no-multiway``) are session-level: every subcommand that builds
    a session applies them uniformly.  Contradictory combinations are
    rejected here, before any work.
    """
    budget = getattr(args, "partition_budget", None)
    workers = getattr(args, "max_workers", None)
    backend = getattr(args, "backend", None)
    replan = getattr(args, "replan_threshold", None)
    no_costs = bool(getattr(args, "no_costs", False))
    no_reorder = bool(getattr(args, "no_reorder_joins", False))
    no_partitions = bool(getattr(args, "no_partitions", False))
    no_multiway = bool(getattr(args, "no_multiway", False))
    if replan is not None and no_costs:
        raise ReproError(
            "--replan-threshold needs cost-based planning (the "
            "threshold measures the cost model's estimation error, "
            "which --no-costs disables); drop --no-costs"
        )
    if budget is not None and no_partitions:
        raise ReproError(
            "--partition-budget and --no-partitions contradict each "
            "other: a budget requests partitioned execution, "
            "--no-partitions forbids it; drop one"
        )
    if budget is not None and no_costs:
        raise ReproError(
            "--partition-budget needs cost-based planning (partition "
            "sizing uses the cost model's sound bounds); drop --no-costs"
        )
    if workers is not None and workers > 1 and no_costs:
        raise ReproError(
            "--max-workers needs cost-based planning (the dispatch "
            "gate uses the cost model's sound bounds); drop --no-costs"
        )
    if (
        budget is None
        and workers is None
        and backend is None
        and replan is None
        and not (no_costs or no_reorder or no_partitions or no_multiway)
    ):
        return None
    from repro.engine import PlannerOptions

    # PlannerOptions validates the budget, worker count, backend kind,
    # and replan threshold itself.
    return PlannerOptions(
        use_costs=not no_costs,
        reorder_joins=not no_reorder,
        use_partitions=not no_partitions,
        use_multiway=not no_multiway,
        partition_budget=budget,
        max_workers=1 if workers is None else workers,
        backend="memory" if backend is None else backend,
        replan_threshold=replan,
    )


def _session_from_flags(args):
    """The shared Session built from ``-d`` plus the session flags."""
    from repro.session import Session

    db = _load_database(args.database)
    return Session(db, options=_session_options(args))


#: The boolean session-level planner flags: ``(args attribute, flag,
#: help text)``.  The argparse parent parser and the ``--no-engine``
#: rejection both derive from this one table, so a flag added here is
#: automatically parsed everywhere *and* rejected under ``--no-engine``
#: — the two lists cannot drift apart.
_SESSION_BOOL_FLAGS = (
    (
        "no_costs",
        "--no-costs",
        "plan structurally: disable every cost-based decision "
        "(operator choice, join ordering, partition sizing)",
    ),
    (
        "no_reorder_joins",
        "--no-reorder-joins",
        "keep >=3-way join chains in their written order",
    ),
    (
        "no_partitions",
        "--no-partitions",
        "never wrap operators in partitioned execution "
        "(contradicts --partition-budget)",
    ),
    (
        "no_multiway",
        "--no-multiway",
        "never collapse an equi-join chain into the worst-case-"
        "optimal multiway join (keep binary join plans)",
    ),
)


def _engine_flags_given(args) -> tuple[str, ...]:
    """Engine-only flags present on ``args`` (for --no-engine checks)."""
    given = []
    if getattr(args, "partition_budget", None) is not None:
        given.append("--partition-budget")
    if getattr(args, "max_workers", None) is not None:
        given.append("--max-workers")
    if getattr(args, "backend", None) is not None:
        given.append("--backend")
    if getattr(args, "replan_threshold", None) is not None:
        given.append("--replan-threshold")
    for attr, flag, __ in _SESSION_BOOL_FLAGS:
        if getattr(args, attr, False):
            given.append(flag)
    if getattr(args, "stats", False):
        given.append("--stats")
    return tuple(given)


def _cmd_eval(args) -> int:
    if getattr(args, "no_engine", False):
        conflicting = _engine_flags_given(args)
        if conflicting:
            raise ReproError(
                f"{', '.join(conflicting)} need(s) the engine; drop "
                "--no-engine"
            )
        db = _load_database(args.database)
        expr = parse(args.expression, db.schema)
        result = evaluate(expr, db, use_engine=False)
    else:
        session = _session_from_flags(args)
        try:
            result = session.query(args.expression).run()
        finally:
            session.close()
    rows = sorted(result, key=repr)
    for row in rows:
        print("\t".join(str(v) for v in row))
    print(f"-- {len(rows)} row(s)", file=sys.stderr)
    if getattr(args, "stats", False):
        print(session.last_report.render(), file=sys.stderr)
    return 0


def _cmd_explain(args) -> int:
    if args.database:
        # Session-backed: the plan printed is cost-based against the
        # database's statistics, and is exactly the plan executed and
        # measured below (EXPLAIN ANALYZE-style).
        with _session_from_flags(args) as session:
            prepared = session.query(args.expression)
            print(
                prepared.explain(
                    costs=args.costs,
                    analyze=args.analyze,
                    feedback=getattr(args, "feedback", False),
                )
            )
            result = prepared.run()
        print(f"-- {len(result)} row(s)", file=sys.stderr)
        print(session.last_report.render(), file=sys.stderr)
        if getattr(args, "feedback", False):
            # The stdout report above is the ledger *as it planned* —
            # empty in a one-shot process.  This one is what the run
            # just recorded.
            print(session.feedback.report(), file=sys.stderr)
        return 0
    if not args.schema:
        raise ReproError("provide --database or --schema")
    if getattr(args, "feedback", False):
        raise ReproError(
            "explain --feedback reads the estimator-error ledger, "
            "which only exists for a database-backed session; provide "
            "--database"
        )
    from repro.engine import DEFAULT_OPTIONS, plan_expression
    from repro.engine.planner import explain as explain_plan

    schema = _parse_schema(args.schema)
    expr = parse(args.expression, schema)
    # Schema-only planning has no statistics: the structural rules
    # apply, --costs annotates from the zero-stats default assumptions,
    # and a partition budget cannot be sized (nothing sound to size
    # against) — the plan is printed unpartitioned, matching what the
    # engine would run.
    options = _session_options(args) or DEFAULT_OPTIONS
    plan = plan_expression(expr, options)
    print(
        explain_plan(
            expr,
            schema=schema,
            analyze=args.analyze,
            plan=plan,
            costs=args.costs,
        )
    )
    return 0


def _cmd_trace(args) -> int:
    db = _load_database(args.database)
    expr = parse(args.expression, db.schema)
    print(trace(expr, db).report())
    return 0


def _cmd_classify(args) -> int:
    schema = _schema_for(args)
    expr = parse(args.expression, schema)
    universe = _UNIVERSES[args.universe]
    report = analyze(expr, schema, universe)
    print(report.summary())
    return 0


def _cmd_compile(args) -> int:
    schema = _schema_for(args)
    expr = parse(args.expression, schema)
    universe = _UNIVERSES[args.universe]
    compiled = compile_to_sa(expr, schema, universe)
    print(to_ascii(compiled) if args.ascii else to_text(compiled))
    return 0


def _cmd_divide(args) -> int:
    # Session.divide validates the operand names and arities against
    # the schema before dispatching, so every algorithm choice —
    # engine-planned or direct — fails identically on bad operands.
    with _session_from_flags(args) as session:
        quotient = session.divide(
            args.dividend, args.divisor, algorithm=args.algorithm
        )
    for value in sorted(quotient, key=repr):
        print(value)
    print(f"-- {len(quotient)} row(s)", file=sys.stderr)
    return 0


def _cmd_optimize(args) -> int:
    from repro.algebra.optimize import optimize

    # Validate the shared session flags uniformly; pure rewriting then
    # needs only the schema, not the engine machinery behind a session.
    _session_options(args)
    expr = parse(args.expression, _schema_for(args))
    rewritten = optimize(expr)
    print(to_ascii(rewritten) if args.ascii else to_text(rewritten))
    return 0


def _cmd_gf(args) -> int:
    from repro.logic.eval import answers, answers_c_stored
    from repro.logic.parser import parse_formula

    db = _load_database(args.database)
    phi = parse_formula(args.formula)
    var_order = args.vars or sorted(phi.free_variables())
    constants = tuple(_parse_value(v) for v in args.constants or ())
    answer_fn = answers_c_stored if args.c_stored else answers
    rows = sorted(
        answer_fn(db, phi, var_order, constants=constants), key=repr
    )
    print("\t".join(var_order))
    for row in rows:
        print("\t".join(str(v) for v in row))
    print(f"-- {len(rows)} row(s)", file=sys.stderr)
    return 0


def _cmd_bisim(args) -> int:
    left = _load_database(args.left)
    right = _load_database(args.right)
    left_tuple = tuple(_parse_value(v) for v in args.left_tuple)
    right_tuple = tuple(_parse_value(v) for v in args.right_tuple)
    constants = tuple(_parse_value(v) for v in args.constants or ())
    verdict = are_bisimilar(left, left_tuple, right, right_tuple, constants)
    print("bisimilar" if verdict.bisimilar else "NOT bisimilar")
    print(verdict.reason)
    return 0 if verdict.bisimilar else 1


def _cmd_bench(args) -> int:
    from repro.bench.__main__ import main as bench_main

    return bench_main(args.ids)


def _cmd_serve(args) -> int:
    from repro.serve.lab import load_spec, run_scenario
    from repro.workloads.serving import SERVING_SCENARIOS, scenario

    if args.list_scenarios:
        for name in sorted(SERVING_SCENARIOS):
            print(name)
        return 0
    if bool(args.scenario) == bool(args.spec):
        raise ReproError(
            "provide exactly one of --scenario or --spec "
            "(or --list-scenarios)"
        )
    if args.spec:
        spec = load_spec(args.spec)
        if args.oracle:
            from dataclasses import replace

            spec = replace(spec, oracle=True)
    else:
        kwargs = {}
        if args.reads is not None:
            kwargs["reads"] = args.reads
        if args.oracle:
            kwargs["oracle"] = True
        spec = scenario(args.scenario, **kwargs)
    db = _load_database(args.database) if args.database else None
    result = run_scenario(
        spec,
        db=db,
        workers=args.workers,
        backend=args.backend,
        budget=args.budget,
    )
    print(result.render())
    if args.stats:
        print(result.metrics_text, file=sys.stderr)
    if args.emit:
        import json

        with open(args.emit, "w", encoding="utf-8") as handle:
            json.dump(result.as_dict(), handle, indent=2, sort_keys=True)
        print(f"-- wrote {args.emit}", file=sys.stderr)
    if result.oracle_mismatches or result.failed:
        # A lab run that saw wrong rows (or errored reads) is a
        # failure, not a statistic — CI smoke rides on this.
        return 1
    return 0


def _session_flags_parser() -> argparse.ArgumentParser:
    """The shared session flags, as an argparse parent parser.

    Attached to every subcommand that builds a :class:`~repro.session.
    Session` (``eval``, ``explain``, ``divide``, ``optimize``), so the
    planner knobs read identically everywhere and are applied
    session-level rather than per call.
    """
    flags = argparse.ArgumentParser(add_help=False)
    group = flags.add_argument_group("session options")
    group.add_argument(
        "--partition-budget",
        type=int,
        metavar="ROWS",
        help="rows-in-flight cap for partitioned execution: operators "
        "whose estimated in-flight bound exceeds it run in batches "
        "(needs cost-based planning and a database's statistics)",
    )
    group.add_argument(
        "--max-workers",
        type=int,
        metavar="N",
        help="shard batched operators across N worker processes when "
        "the cost model certifies the parallel cost beats serial "
        "(needs cost-based planning; 1 = exactly serial)",
    )
    group.add_argument(
        "--backend",
        choices=("memory", "shm", "mmap"),
        help="storage backend the session reads relations from: "
        "'memory' (default) serves rows straight off the loaded "
        "database, 'shm' encodes them columnar into shared memory "
        "(parallel workers attach by segment name), 'mmap' spills the "
        "same columnar layout to a memory-mapped temp file",
    )
    group.add_argument(
        "--replan-threshold",
        type=float,
        metavar="RATIO",
        help="re-plan a memoized query when the feedback ledger's "
        "observed estimator error for any of its operators drifts by "
        "at least this ratio (> 1; needs cost-based planning), and "
        "let partitioned operators re-pack remaining batches "
        "mid-query when actuals beat their priced worst case",
    )
    for __, flag, help_text in _SESSION_BOOL_FLAGS:
        group.add_argument(flag, action="store_true", help=help_text)
    return flags


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Leinders & Van den Bussche, 'On the "
            "complexity of division and set joins in the relational "
            "algebra'."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    session_flags = _session_flags_parser()

    p_eval = sub.add_parser(
        "eval",
        help="evaluate an expression (session-backed)",
        parents=[session_flags],
    )
    p_eval.add_argument("expression")
    p_eval.add_argument("-d", "--database", required=True)
    p_eval.add_argument(
        "--no-engine",
        action="store_true",
        help="bypass the engine and use the structural evaluator",
    )
    p_eval.add_argument(
        "--stats",
        action="store_true",
        help="print the execution report to stderr: result-cache "
        "hit/miss counters, per-operator estimated-vs-actual rows, "
        "and the peak rows in flight",
    )
    p_eval.set_defaults(fn=_cmd_eval)

    p_explain = sub.add_parser(
        "explain",
        help="show the engine's physical plan (with -d: also execute "
        "it and report executor stats)",
        parents=[session_flags],
    )
    p_explain.add_argument("expression")
    p_explain.add_argument("-d", "--database")
    p_explain.add_argument("--schema", help="e.g. 'R:2,S:1'")
    p_explain.add_argument(
        "--analyze",
        action="store_true",
        help="prefix the Theorem 17 dichotomy verdict",
    )
    p_explain.add_argument(
        "--costs",
        action="store_true",
        help="annotate each operator with the cost model's estimated "
        "rows, sound upper bound, and cost (statistics come from -d; "
        "schema-only estimates use default assumptions)",
    )
    p_explain.add_argument(
        "--feedback",
        action="store_true",
        help="append the estimator-error feedback ledger report "
        "(needs -d: the ledger lives on the session's catalog)",
    )
    p_explain.set_defaults(fn=_cmd_explain)

    p_trace = sub.add_parser(
        "trace", help="evaluate, reporting intermediate sizes"
    )
    p_trace.add_argument("expression")
    p_trace.add_argument("-d", "--database", required=True)
    p_trace.set_defaults(fn=_cmd_trace)

    p_classify = sub.add_parser(
        "classify", help="run the dichotomy analysis"
    )
    p_classify.add_argument("expression")
    p_classify.add_argument("-d", "--database")
    p_classify.add_argument("--schema", help="e.g. 'R:2,S:1'")
    p_classify.add_argument(
        "--universe", choices=sorted(_UNIVERSES), default="integers"
    )
    p_classify.set_defaults(fn=_cmd_classify)

    p_compile = sub.add_parser(
        "compile", help="compile RA to SA= (Theorem 18)"
    )
    p_compile.add_argument("expression")
    p_compile.add_argument("-d", "--database")
    p_compile.add_argument("--schema", help="e.g. 'R:2,S:1'")
    p_compile.add_argument(
        "--universe", choices=sorted(_UNIVERSES), default="integers"
    )
    p_compile.add_argument("--ascii", action="store_true")
    p_compile.set_defaults(fn=_cmd_compile)

    p_divide = sub.add_parser(
        "divide",
        help="relational division (session-backed)",
        parents=[session_flags],
    )
    p_divide.add_argument("-d", "--database", required=True)
    p_divide.add_argument("--dividend", default="R")
    p_divide.add_argument("--divisor", default="S")
    p_divide.add_argument(
        "--algorithm",
        choices=["reference", "engine"] + sorted(DIVISION_ALGORITHMS),
        default="hash",
    )
    p_divide.set_defaults(fn=_cmd_divide)

    p_optimize = sub.add_parser(
        "optimize",
        help="push selections, introduce semijoins",
        parents=[session_flags],
    )
    p_optimize.add_argument("expression")
    p_optimize.add_argument("-d", "--database")
    p_optimize.add_argument("--schema", help="e.g. 'R:2,S:1'")
    p_optimize.add_argument("--ascii", action="store_true")
    p_optimize.set_defaults(fn=_cmd_optimize)

    p_gf = sub.add_parser(
        "gf", help="evaluate a guarded-fragment formula"
    )
    p_gf.add_argument("formula")
    p_gf.add_argument("-d", "--database", required=True)
    p_gf.add_argument("--vars", nargs="*", help="output variable order")
    p_gf.add_argument("--constants", nargs="*")
    p_gf.add_argument(
        "--c-stored",
        action="store_true",
        help="restrict answers to C-stored tuples (Theorem 8 convention)",
    )
    p_gf.set_defaults(fn=_cmd_gf)

    p_bisim = sub.add_parser(
        "bisim", help="decide C-guarded bisimilarity"
    )
    p_bisim.add_argument("-a", "--left", required=True)
    p_bisim.add_argument("-b", "--right", required=True)
    p_bisim.add_argument("--left-tuple", nargs="+", required=True)
    p_bisim.add_argument("--right-tuple", nargs="+", required=True)
    p_bisim.add_argument("--constants", nargs="*")
    p_bisim.set_defaults(fn=_cmd_bisim)

    p_bench = sub.add_parser("bench", help="run paper experiments")
    p_bench.add_argument("ids", nargs="*")
    p_bench.set_defaults(fn=_cmd_bench)

    p_serve = sub.add_parser(
        "serve",
        help="run a serving-lab workload scenario against a live "
        "multi-tenant server",
    )
    p_serve.add_argument(
        "--scenario",
        help="a named scenario (see --list-scenarios)",
    )
    p_serve.add_argument(
        "--spec",
        metavar="FILE.json",
        help="a JSON workload spec (see docs/serving.md for the format)",
    )
    p_serve.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print the named scenarios and exit",
    )
    p_serve.add_argument(
        "-d",
        "--database",
        help="serve this database file instead of the scenario's "
        "built-in recipe",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="read-execution worker processes (default: the scenario's, "
        "else available CPUs; 0 = inline, serialized)",
    )
    p_serve.add_argument(
        "--budget",
        type=float,
        metavar="ROWS",
        help="in-flight certified-row admission budget (default: the "
        "scenario's; unset = no admission gating)",
    )
    p_serve.add_argument(
        "--backend",
        choices=("memory", "shm", "mmap"),
        help="shared storage backend snapshots are exported from "
        "(default: the scenario's)",
    )
    p_serve.add_argument(
        "--reads",
        type=int,
        metavar="N",
        help="operations per client stream (named scenarios only)",
    )
    p_serve.add_argument(
        "--oracle",
        action="store_true",
        help="replay every admitted read against the serial oracle at "
        "its pinned snapshot (exact but slow); mismatches exit 1",
    )
    p_serve.add_argument(
        "--stats",
        action="store_true",
        help="print the per-tenant admission/latency/utilization "
        "table to stderr",
    )
    p_serve.add_argument(
        "--emit",
        metavar="FILE.json",
        help="write the scenario result as JSON",
    )
    p_serve.set_defaults(fn=_cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
