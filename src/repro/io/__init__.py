"""Database serialization: exact JSON and convenient CSV."""

from repro.io.csv_io import load_database_csv, save_database_csv
from repro.io.json_io import (
    database_from_json,
    database_to_json,
    load_database,
    save_database,
)

__all__ = [
    "load_database_csv",
    "save_database_csv",
    "database_from_json",
    "database_to_json",
    "load_database",
    "save_database",
]
