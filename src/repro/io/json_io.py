"""JSON serialization of databases.

Format::

    {
      "schema": {"R": 2, "S": 1},
      "relations": {
        "R": [[1, 2], [1, 3]],
        "S": [["x"]]
      }
    }

Values are JSON numbers or strings; fractions are encoded as
``{"fraction": [numerator, denominator]}`` so the blow-up construction's
databases round-trip exactly.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path

from repro.data.database import Database
from repro.data.schema import Schema
from repro.data.universe import Value
from repro.errors import SchemaError


def _encode_value(value: Value):
    if isinstance(value, Fraction):
        return {"fraction": [value.numerator, value.denominator]}
    if isinstance(value, bool):
        raise SchemaError("bool is not a database value")
    if isinstance(value, (int, str)):
        return value
    raise SchemaError(f"cannot serialize value {value!r}")


def _decode_value(raw) -> Value:
    if isinstance(raw, dict):
        if set(raw) != {"fraction"} or len(raw["fraction"]) != 2:
            raise SchemaError(f"bad value encoding: {raw!r}")
        numerator, denominator = raw["fraction"]
        return Fraction(numerator, denominator)
    if isinstance(raw, bool) or isinstance(raw, float):
        raise SchemaError(f"unsupported JSON value: {raw!r}")
    if isinstance(raw, (int, str)):
        return raw
    raise SchemaError(f"unsupported JSON value: {raw!r}")


def database_to_json(db: Database) -> str:
    """Serialize a database to a JSON string (deterministic order)."""
    payload = {
        "schema": {name: db.schema[name] for name in db.schema},
        "relations": {
            name: [
                [_encode_value(v) for v in row]
                for row in sorted(db[name], key=repr)
            ]
            for name in db.schema
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def database_from_json(text: str) -> Database:
    """Parse a database from its JSON form."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SchemaError(f"invalid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "schema" not in payload:
        raise SchemaError("JSON database needs a 'schema' object")
    schema = Schema(payload["schema"])
    relations = {
        name: [
            tuple(_decode_value(v) for v in row)
            for row in rows
        ]
        for name, rows in payload.get("relations", {}).items()
    }
    return Database(schema, relations)


def save_database(db: Database, path: "str | Path") -> None:
    """Write a database to a JSON file."""
    Path(path).write_text(database_to_json(db), encoding="utf-8")


def load_database(path: "str | Path") -> Database:
    """Read a database from a JSON file."""
    return database_from_json(Path(path).read_text(encoding="utf-8"))
