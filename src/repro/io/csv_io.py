"""CSV directory serialization of databases.

A database maps to a directory with one headerless CSV file per
relation (``R.csv``, ``S.csv``, ...).  Values are written as text;
loading needs the schema and a per-column type hint (default: try int,
fall back to str), so CSV is the lossy-but-convenient format and JSON
(:mod:`repro.io.json_io`) the exact one.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Callable

from repro.data.database import Database
from repro.data.schema import Schema
from repro.data.universe import Value
from repro.errors import SchemaError


def _default_parser(text: str) -> Value:
    try:
        return int(text)
    except ValueError:
        return text


def save_database_csv(db: Database, directory: "str | Path") -> None:
    """Write one ``<relation>.csv`` per relation into ``directory``."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    for name in db.schema:
        with open(root / f"{name}.csv", "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            for row in sorted(db[name], key=repr):
                writer.writerow([str(v) for v in row])


def load_database_csv(
    schema: Schema,
    directory: "str | Path",
    parser: Callable[[str], Value] = _default_parser,
) -> Database:
    """Read ``<relation>.csv`` files for every schema relation.

    Missing files mean empty relations; extra files are ignored.
    """
    root = Path(directory)
    if not root.is_dir():
        raise SchemaError(f"{root} is not a directory")
    relations: dict[str, list[tuple[Value, ...]]] = {}
    for name in schema:
        path = root / f"{name}.csv"
        if not path.exists():
            relations[name] = []
            continue
        rows: list[tuple[Value, ...]] = []
        with open(path, newline="", encoding="utf-8") as handle:
            for record in csv.reader(handle):
                if not record:
                    continue
                rows.append(tuple(parser(field) for field in record))
        relations[name] = rows
    return Database(schema, relations)
