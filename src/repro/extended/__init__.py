"""Extended RA (grouping/aggregation) and the Section 5 linear plans."""

from repro.extended.ast import AGG_FUNCS, Aggregate, GroupBy, Sort, group_by
from repro.extended.division_plan import (
    containment_division_plan,
    equality_division_plan,
    plan_intermediate_bound,
)
from repro.extended.evaluator import (
    evaluate_extended,
    extension,
    trace_extended,
)

__all__ = [
    "AGG_FUNCS",
    "Aggregate",
    "GroupBy",
    "Sort",
    "group_by",
    "containment_division_plan",
    "equality_division_plan",
    "plan_intermediate_bound",
    "evaluate_extended",
    "extension",
    "trace_extended",
]
