"""Extended relational algebra: grouping and aggregation (Section 5).

"Practical query processing uses a more powerful relational algebra
including grouping, sorting, and aggregation operators" — the paper
closes by noting that in this richer algebra, containment- and
equality-division become *linear*.  This package adds the γ operator
(and a semantically transparent Sort marker) on top of the core AST so
the Section 5 plans can be built, traced and measured.

Set semantics carries over: a group's ``count`` over a position counts
*distinct* values (rows are deduplicated), matching the paper's use
``count(B)`` on ``R ⋈_{B=C} S``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.ast import Expr
from repro.errors import PositionError, SchemaError

#: The supported aggregate functions.
AGG_FUNCS = ("count", "min", "max", "sum")


@dataclass(frozen=True)
class Aggregate:
    """One aggregate column: ``func`` over a 1-based input position."""

    func: str
    position: int

    def __post_init__(self) -> None:
        if self.func not in AGG_FUNCS:
            raise SchemaError(
                f"unknown aggregate {self.func!r}; expected one of "
                f"{AGG_FUNCS}"
            )
        if self.position < 1:
            raise PositionError(self.position, 0, "aggregate")

    def __str__(self) -> str:
        return f"{self.func}({self.position})"


@dataclass(frozen=True)
class GroupBy(Expr):
    """``γ_{positions, aggregates}(E)``.

    Output columns: the grouping positions (in the given order)
    followed by one column per aggregate.  With no grouping positions
    there is a single group; over an *empty* input, a count-only
    grouping emits one all-zero row (the SQL convention), while
    min/max/sum have no value and the row is suppressed — the
    empty-divisor caveat of the Section 5 division plans, documented in
    :mod:`repro.extended.division_plan`.
    """

    child: Expr
    group_positions: tuple[int, ...]
    aggregates: tuple[Aggregate, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "group_positions", tuple(self.group_positions)
        )
        object.__setattr__(self, "aggregates", tuple(self.aggregates))
        for position in self.group_positions:
            if position < 1 or position > self.child.arity:
                raise PositionError(
                    position, self.child.arity, "grouping"
                )
        for aggregate in self.aggregates:
            if aggregate.position > self.child.arity:
                raise PositionError(
                    aggregate.position, self.child.arity, str(aggregate)
                )
        if not self.aggregates and not self.group_positions:
            raise SchemaError("γ needs grouping positions or aggregates")

    @property
    def arity(self) -> int:
        return len(self.group_positions) + len(self.aggregates)

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Sort(Expr):
    """An order-by marker: semantically the identity under set semantics.

    Present because the paper names sorting among the practical
    operators; plans built with it trace identically to their unsorted
    forms, and the evaluator treats it as a no-op.
    """

    child: Expr
    positions: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "positions", tuple(self.positions))
        for position in self.positions:
            if position < 1 or position > self.child.arity:
                raise PositionError(position, self.child.arity, "sort")

    @property
    def arity(self) -> int:
        return self.child.arity

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)


def group_by(
    child: Expr,
    positions: tuple[int, ...] | list[int],
    *aggregates: "Aggregate | tuple[str, int] | str",
) -> GroupBy:
    """Convenience constructor.

    >>> from repro.algebra.ast import rel
    >>> group_by(rel("R", 2), [1], "count(2)").arity
    2
    """
    built: list[Aggregate] = []
    for aggregate in aggregates:
        if isinstance(aggregate, Aggregate):
            built.append(aggregate)
        elif isinstance(aggregate, tuple):
            built.append(Aggregate(*aggregate))
        else:
            func, __, rest = aggregate.partition("(")
            built.append(Aggregate(func.strip(), int(rest.rstrip(") "))))
    return GroupBy(child, tuple(positions), tuple(built))
