"""Evaluation of the extended algebra (γ and Sort nodes).

Implements the :data:`repro.algebra.evaluator.Extension` hook, so the
core evaluator, memoization and tracing all work unchanged on extended
expressions — ``evaluate_extended`` / ``trace_extended`` are thin
wrappers passing the hook.
"""

from __future__ import annotations

from repro.algebra.ast import Expr
from repro.algebra.evaluator import Relation, evaluate
from repro.algebra.trace import EvalTrace, trace
from repro.data.database import Database, Row
from repro.errors import SchemaError
from repro.extended.ast import Aggregate, GroupBy, Sort


def _aggregate_value(aggregate: Aggregate, rows: list[Row]):
    values = {row[aggregate.position - 1] for row in rows}
    if aggregate.func == "count":
        return len(values)
    if not values:
        return None  # suppressed: no aggregate value over an empty group
    if aggregate.func == "min":
        return min(values)
    if aggregate.func == "max":
        return max(values)
    if aggregate.func == "sum":
        total = 0
        for value in values:
            if isinstance(value, str):
                raise SchemaError("sum over string values")
            total += value
        return total
    raise SchemaError(f"unknown aggregate {aggregate.func!r}")


def _eval_group_by(node: GroupBy, rows: Relation) -> Relation:
    groups: dict[Row, list[Row]] = {}
    for row in rows:
        key = tuple(row[p - 1] for p in node.group_positions)
        groups.setdefault(key, []).append(row)
    if not node.group_positions and not groups:
        # SQL convention: aggregates over an empty input form one group.
        groups[()] = []
    out: set[Row] = set()
    for key, members in groups.items():
        aggregated = []
        suppressed = False
        for aggregate in node.aggregates:
            value = _aggregate_value(aggregate, members)
            if value is None:
                suppressed = True
                break
            aggregated.append(value)
        if not suppressed:
            out.add(key + tuple(aggregated))
    return frozenset(out)


def extension(expr: Expr, db: Database, recurse) -> Relation | None:
    """The extended-algebra evaluation hook."""
    if isinstance(expr, GroupBy):
        return _eval_group_by(expr, recurse(expr.child))
    if isinstance(expr, Sort):
        return recurse(expr.child)  # identity under set semantics
    return None


def evaluate_extended(
    expr: Expr, db: Database, memo: dict[Expr, Relation] | None = None
) -> Relation:
    """Evaluate an expression that may contain γ / Sort nodes."""
    return evaluate(expr, db, memo, extension)


def trace_extended(expr: Expr, db: Database) -> EvalTrace:
    """Traced evaluation for extended expressions."""
    return trace(expr, db, extension)
