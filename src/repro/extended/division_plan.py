"""The linear division plans of Section 5.

The paper's closing observation: with grouping (γ) and counting,
containment-division is the **linear** expression

    π_A ( γ_{A, count(B)} ( R ⋈_{B=C} S )  ⋈_{count(B) = count(C)}  γ_{∅, count(C)} S )

and equality-division has an analogous linear plan [11, 12].  These
plans are the formal justification for implementing set joins as
special-purpose operators: the same query that *must* be quadratic in
plain RA (Proposition 26) is linear one algebra up.

Caveat (shared with the SQL folklore the plans come from): with an
**empty divisor**, ``R ⋈ S`` is empty, so the γ over it produces no
groups and the plans return ∅, whereas ``R ÷ ∅ = π_A(R)``.  The paper's
expression has the same behaviour; the experiments avoid the empty
divisor and the tests document it.

Production execution goes through the engine: the planner recognizes
both plans structurally (:func:`repro.engine.planner.match_division`)
and collapses them into a single linear division operator —
:func:`execute_division_plan` is the rewired entry point, and the
expressions above stay as the reference semantics the engine is tested
against (the empty-divisor caveat is preserved exactly).
"""

from __future__ import annotations

from repro.algebra.ast import Expr, Join, Projection, Rel, Selection
from repro.data.database import Database
from repro.errors import SchemaError
from repro.extended.ast import Aggregate, GroupBy


def containment_division_plan(
    r: Expr | None = None, s: Expr | None = None
) -> Expr:
    """The paper's Section 5 containment-division plan, verbatim.

    Column layout:  ``R ⋈_{2=1} S`` is ``(A, B, C)``;
    ``γ_{1, count(2)}`` gives ``(A, cnt)``; ``γ_{∅, count(1)} S`` gives
    ``(cnt,)``; the final join matches the counts and π₁ projects A.
    """
    r = r if r is not None else Rel("R", 2)
    s = s if s is not None else Rel("S", 1)
    if r.arity != 2 or s.arity != 1:
        raise SchemaError("containment_division_plan needs R/2 and S/1")
    joined = Join(r, s, "2=1")
    per_candidate = GroupBy(joined, (1,), (Aggregate("count", 2),))
    divisor_size = GroupBy(s, (), (Aggregate("count", 1),))
    matched = Join(per_candidate, divisor_size, "2=1")
    return Projection(matched, (1,))


def equality_division_plan(
    r: Expr | None = None, s: Expr | None = None
) -> Expr:
    """The analogous linear plan for equality-division [11, 12].

    ``set_B(a) = S`` iff the number of matching B's *and* the total
    number of B's both equal |S|:

        π_A ( σ_{total=|S|} ( γ_{A,count}(R ⋈ S) ⋈_A γ_{A,count}(R) ⋈_{match=|S|} γ_{count}(S) ) )
    """
    r = r if r is not None else Rel("R", 2)
    s = s if s is not None else Rel("S", 1)
    if r.arity != 2 or s.arity != 1:
        raise SchemaError("equality_division_plan needs R/2 and S/1")
    joined = Join(r, s, "2=1")
    matches = GroupBy(joined, (1,), (Aggregate("count", 2),))   # (A, m)
    totals = GroupBy(r, (1,), (Aggregate("count", 2),))         # (A, t)
    divisor_size = GroupBy(s, (), (Aggregate("count", 1),))     # (k,)
    per_candidate = Join(matches, totals, "1=1")                # (A,m,A,t)
    with_k = Join(per_candidate, divisor_size, "2=1")           # (A,m,A,t,k)
    equal_totals = Selection(with_k, "=", 4, 5)                 # t = k
    return Projection(equal_totals, (1,))


def division_plan(eq: bool = False, r: Expr | None = None, s: Expr | None = None) -> Expr:
    """The §5 plan for either division flavour (``eq`` selects equality)."""
    if eq:
        return equality_division_plan(r, s)
    return containment_division_plan(r, s)


def execute_division_plan(
    db: Database,
    eq: bool = False,
    r: Expr | None = None,
    s: Expr | None = None,
    executor=None,
    session=None,
):
    """Run the §5 plan through the engine (routed to linear division).

    The planner collapses the γ expression into one
    :class:`~repro.engine.plan.DivisionOp`, so no join or grouping
    intermediate is materialized; semantics (including the
    empty-divisor caveat) match :func:`repro.extended.evaluator.
    evaluate_extended` on the same expression exactly.  Pass a
    :class:`~repro.session.Session` bound to ``db`` to share caches
    (and the cross-query result cache) across calls; with neither
    ``session`` nor the legacy ``executor`` shim the shared implicit
    session is used (:func:`repro.session.run`).
    """
    expr = division_plan(eq, r, s)
    if session is not None:
        return session.run(expr)
    if executor is not None:
        from repro.engine import run

        return run(expr, db, executor=executor)
    from repro.session import run as session_run

    return session_run(expr, db)


def physical_division_plan(eq: bool = False):
    """The engine's physical plan for the §5 expression (for EXPLAIN)."""
    from repro.engine import plan_expression

    return plan_expression(division_plan(eq))


def plan_intermediate_bound(r_size: int, s_size: int) -> int:
    """An explicit linear bound on every intermediate of the plans.

    ``R ⋈_{B=C} S`` has at most |R| rows (each R-row matches one C),
    each γ has at most |R| (resp. 1) rows, and the final joins only
    shrink — so every intermediate is ≤ |R| + |S| + 1.  The THM17/PROP26
    experiments assert the measured sizes against this bound.
    """
    return r_size + s_size + 1
