"""The cost-aware query engine: plan → optimize → execute.

The paper's dichotomy (Theorem 17) and the division lower bound
(Proposition 26) are statements about *plan choice*: the same query is
unavoidably quadratic as a classic RA expression yet linear as a direct
algorithm one level down.  This package is the layer that acts on that:

* :mod:`repro.engine.plan` — physical operator nodes (hash join,
  hash semijoin, the division-algorithm zoo, grouping) with
  EXPLAIN-style rendering;
* :mod:`repro.engine.stats` — exact per-relation statistics
  (cardinality, distinct counts, most-common-value sketches),
  collected lazily per database;
* :mod:`repro.engine.cost` — the cardinality/cost estimator: point
  estimates, sound upper bounds (AGM-style on equi-join chains), and
  cumulative operator costs;
* :mod:`repro.engine.planner` — structural recognition of division
  patterns plus cost-based operator choice and join ordering, with
  the structural rules as the zero-stats fallback;
* :mod:`repro.engine.executor` — memoizing streaming execution with a
  per-database hash-index cache, the statistics catalog, and a
  version token guarding both against content changes;
* :mod:`repro.engine.partition` — partitioned (batched) execution of
  joins, semijoins, and division under a rows-in-flight budget, sized
  from the cost model's sound upper bounds
  (``PlannerOptions.partition_budget``).

Typical use::

    from repro.engine import run, explain

    rows = run(expr, db)            # plan + execute
    print(explain(expr))            # what the planner chose, and why

See ``docs/engine.md`` for the architecture and the routing rules.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.algebra.ast import Expr
from repro.algebra.evaluator import Relation
from repro.data.database import Database
from repro.engine.cost import CostModel, Estimate, estimate_plan
from repro.engine.executor import ExecutionStats, Executor, IndexCache, execute_plan
from repro.engine.partition import (
    BatchRecord,
    PartitionRun,
    apply_partitioning,
    in_flight_upper,
    planned_partitions,
)
from repro.engine.plan import DivisionOp, PartitionedOp, PlanNode
from repro.engine.planner import (
    DEFAULT_OPTIONS,
    Planner,
    PlannerOptions,
    explain,
    match_division,
    plan_expression,
)
from repro.engine.stats import StatsCatalog

__all__ = [
    "DEFAULT_OPTIONS",
    "BatchRecord",
    "CostModel",
    "DivisionOp",
    "Estimate",
    "ExecutionStats",
    "Executor",
    "IndexCache",
    "PartitionRun",
    "PartitionedOp",
    "PlanNode",
    "Planner",
    "PlannerOptions",
    "StatsCatalog",
    "apply_partitioning",
    "estimate_plan",
    "execute_plan",
    "explain",
    "in_flight_upper",
    "match_division",
    "plan_expression",
    "planned_partitions",
    "run",
]

#: Executors bound to recently seen databases, so back-to-back queries
#: against the same database share the hash-index cache even when the
#: caller does not manage an Executor.  Result memos are reset after
#: every top-level query (queries recompute; only index builds
#: amortize), and an executor whose indexes hold more than the row
#: bound is dropped rather than pinned.  Strong references, hence the
#: small FIFO bound on cached databases.
_EXECUTOR_CACHE_SIZE = 8
_EXECUTOR_ROWS_BOUND = 200_000
_executors: "OrderedDict[Database, Executor]" = OrderedDict()


def _executor_for(db: Database) -> Executor:
    executor = _executors.get(db)
    if executor is None:
        executor = Executor(db)
        _executors[db] = executor
        while len(_executors) > _EXECUTOR_CACHE_SIZE:
            _executors.popitem(last=False)
    else:
        _executors.move_to_end(db)
    return executor


def run(
    expr: Expr,
    db: Database,
    options: PlannerOptions = DEFAULT_OPTIONS,
    executor: Executor | None = None,
) -> Relation:
    """Plan ``expr`` and execute it on ``db``.

    Planning is **cost-based**: the executor bound to ``db`` owns the
    statistics catalog, so :meth:`Executor.plan` prices operator
    choices against this database's actual cardinalities (with the
    structural rules as the zero-stats fallback) and memoizes the plan
    per (expression, options, contents version).  Executors are reused
    per database so repeated calls share hash-index builds and
    statistics; each call recomputes its result (the per-query memo is
    reset between calls).  Pass an :class:`Executor` bound to ``db`` to
    manage reuse explicitly — caller-managed executors keep their
    result memo across :meth:`~Executor.execute` calls.
    """
    if executor is None:
        executor = _executor_for(db)
        plan = executor.plan(expr, options)
        result = execute_plan(plan, db, executor)
        executor.reset_query_state()
        if executor.indexes.rows_indexed > _EXECUTOR_ROWS_BOUND:
            _executors.pop(db, None)
        return result
    plan = executor.plan(expr, options)
    return execute_plan(plan, db, executor)
