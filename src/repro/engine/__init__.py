"""The cost-aware query engine: plan → optimize → execute.

The paper's dichotomy (Theorem 17) and the division lower bound
(Proposition 26) are statements about *plan choice*: the same query is
unavoidably quadratic as a classic RA expression yet linear as a direct
algorithm one level down.  This package is the layer that acts on that:

* :mod:`repro.engine.plan` — physical operator nodes (hash join,
  hash semijoin, the division-algorithm zoo, grouping) with
  EXPLAIN-style rendering;
* :mod:`repro.engine.stats` — exact per-relation statistics
  (cardinality, distinct counts, most-common-value sketches),
  collected lazily per database;
* :mod:`repro.engine.cost` — the cardinality/cost estimator: point
  estimates, sound upper bounds (AGM-style on equi-join chains), and
  cumulative operator costs;
* :mod:`repro.engine.wcoj` — the worst-case-optimal generic join:
  variable-at-a-time execution of cyclic equi-join chains within the
  AGM fractional-edge-cover bound (``PlannerOptions.use_multiway``);
* :mod:`repro.engine.planner` — structural recognition of division
  patterns plus cost-based operator choice and join ordering, with
  the structural rules as the zero-stats fallback;
* :mod:`repro.engine.executor` — memoizing streaming execution with a
  per-database hash-index cache, the statistics catalog, and a
  version token guarding both against content changes;
* :mod:`repro.engine.partition` — partitioned (batched) execution of
  joins, semijoins, and division under a rows-in-flight budget, sized
  from the cost model's sound upper bounds
  (``PlannerOptions.partition_budget``);
* :mod:`repro.engine.parallel` — shard-per-worker execution of those
  key-disjoint batches on a process pool, dispatched only when the
  cost model certifies that scatter + IPC is paid back
  (``PlannerOptions.max_workers``).

Typical use goes through the :class:`~repro.session.Session` front
door (``docs/session.md``)::

    from repro.session import Session

    session = Session(db)
    rows = session.run(expr)                    # plan + execute (+ cache)
    print(session.explain(expr, costs=True))    # what the planner chose

:func:`run` below remains as a thin compatibility shim over the shared
implicit session; new code should construct a ``Session``.

See ``docs/engine.md`` for the architecture and the routing rules.
"""

from __future__ import annotations

from repro.algebra.ast import Expr
from repro.algebra.evaluator import Relation
from repro.data.database import Database
from repro.engine.cost import (
    CostModel,
    Estimate,
    estimate_plan,
    fractional_edge_cover,
)
from repro.engine.executor import (
    ExecutionStats,
    Executor,
    IndexCache,
    ResultCache,
    execute_plan,
)
from repro.engine.parallel import (
    ParallelRun,
    WorkerSlice,
    apply_parallelism,
    available_cpus,
    shutdown_worker_pools,
)
from repro.engine.partition import (
    BatchRecord,
    PartitionRun,
    apply_partitioning,
    in_flight_upper,
    planned_partitions,
)
from repro.engine.plan import (
    DivisionOp,
    MultiwayJoinOp,
    ParallelOp,
    PartitionedOp,
    PlanNode,
)
from repro.engine.planner import (
    DEFAULT_OPTIONS,
    Planner,
    PlannerOptions,
    explain,
    match_division,
    plan_expression,
)
from repro.engine.stats import FeedbackLedger, StatsCatalog, feedback_key
from repro.engine.wcoj import WcojRun

__all__ = [
    "DEFAULT_OPTIONS",
    "BatchRecord",
    "CostModel",
    "DivisionOp",
    "Estimate",
    "ExecutionStats",
    "Executor",
    "FeedbackLedger",
    "IndexCache",
    "MultiwayJoinOp",
    "ParallelOp",
    "ParallelRun",
    "PartitionRun",
    "PartitionedOp",
    "PlanNode",
    "Planner",
    "PlannerOptions",
    "ResultCache",
    "StatsCatalog",
    "WcojRun",
    "WorkerSlice",
    "apply_parallelism",
    "apply_partitioning",
    "available_cpus",
    "estimate_plan",
    "execute_plan",
    "explain",
    "feedback_key",
    "fractional_edge_cover",
    "in_flight_upper",
    "match_division",
    "plan_expression",
    "planned_partitions",
    "run",
    "shutdown_worker_pools",
]

def run(
    expr: Expr,
    db: Database,
    options: PlannerOptions = DEFAULT_OPTIONS,
    executor: Executor | None = None,
) -> Relation:
    """Plan ``expr`` and execute it on ``db``.

    .. deprecated::
        Compatibility shim — the :class:`~repro.session.Session` front
        door (``docs/session.md``) is the supported entry point.  With
        no ``executor`` this delegates to :func:`repro.session.run`,
        which routes through the shared per-database session: planning
        is cost-based against the database's actual cardinalities,
        plans/indexes/statistics amortize across calls, and every cache
        is version-token invalidated.  Results are recomputed per call
        (the shared sessions keep result caching off); construct a
        ``Session`` to opt into the cross-query result cache.

    Pass an :class:`Executor` bound to ``db`` to manage reuse
    explicitly — caller-managed executors keep their result memo
    across :meth:`~Executor.execute` calls.
    """
    if executor is None:
        from repro.session import run as session_run

        return session_run(expr, db, options)
    plan = executor.plan(expr, options)
    return execute_plan(plan, db, executor)
