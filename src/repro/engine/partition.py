"""Partitioned execution: batched operators under a rows-in-flight budget.

The paper's dichotomy (Theorem 17) and the division lower bound
(Proposition 26) are statements about *how much intermediate data a
plan materializes*.  The engine's rewrites already route the recognized
patterns to linear operators; this module takes the next scaling step —
the size-bound reasoning of Atserias–Grohe–Marx and the partition-wise
processing behind worst-case-optimal joins — and makes the remaining
big operators run in **hash-partitioned batches** so that no batch ever
holds more than a configured number of rows in flight.

Two layers cooperate:

* **Planning** (static, estimate-driven).  In a post-pass over the
  fully chosen plan (:func:`apply_partitioning` — after every cost
  comparison, so the wrapper's scatter surcharge never flips an
  operator choice), each partitionable operator whose
  :func:`in_flight_upper` — the cost model's *sound* upper bound on
  its rows in flight (inputs + output materialized at once) — exceeds
  ``PlannerOptions.partition_budget`` is wrapped in a
  :class:`~repro.engine.plan.PartitionedOp` whose ``partitions`` field
  carries :func:`planned_partitions`, the predicted batch count
  ``ceil(upper / budget)``.
* **Execution** (exact, weight-driven).  At run time the inputs are
  already materialized frozensets, so per-key weights are *exact*:
  :func:`run_partitioned` groups each input by its partitioning key,
  bounds every key group's contribution (inputs **plus the worst-case
  output** that group can emit), and packs groups into batches by
  best-fit-decreasing (:func:`pack_groups`) with capacity
  ``budget − replicated rows``.  The resulting invariant, asserted by
  the property tests in ``tests/test_engine_partition.py``:

      every batch's measured rows in flight is ≤ the budget, unless
      the batch is a single atomic key group whose own weight already
      exceeds it (a key group cannot be subdivided without changing
      the operator's semantics — the ``budget=1`` degenerate case).

Partitioning strategies per wrapped operator:

==========================  ===========================================
operator                    strategy
==========================  ===========================================
``HashJoinOp``              both sides hash-grouped on the equality
                            keys (via the executor's index cache, so
                            one-shot runs share the build); a key's
                            weight is ``nL + nR + nL·nR`` (fragments +
                            worst-case join output); keys present on
                            only one side emit nothing and are pruned
                            at scatter time
``HashSemijoinOp``          same grouping; weight ``nL + nR + nL``
                            (output ≤ the left fragment)
``NestedLoopSemijoinOp``    left rows batched individually (weight 2:
                            the row + at most one output row); the
                            right side is replicated to every batch
``DivisionOp``              dividend grouped by candidate (column 1);
                            weight ``n_a + 1`` (group + at most one
                            quotient row); the divisor is replicated
==========================  ===========================================

Replicated sides count toward every batch's rows in flight, which is
why they are subtracted from the packing capacity.  When the replicated
side alone meets the budget that capacity vanishes (≤ 0) and per-group
batches would rescan the replicated side once per row/candidate — a
quadratic cliff for zero memory gain, since every batch already holds
at least the replicated rows.  :func:`packed_or_fallback` detects this
and falls back to one-shot execution (a single batch), recording the
reason on the :class:`PartitionRun` and marking the batch so the
``within()`` invariant knows it was deliberate.  Nested-loop *joins*
are not partitionable: without equality keys a batch's output is not
bounded by its own fragment, so no per-batch budget could be certified.

The per-batch bodies are module-level **kernels**
(:func:`keyed_batch_kernel`, :func:`semijoin_batch_kernel`,
:func:`division_batch_kernel`) operating on plain picklable data, so
:mod:`repro.engine.parallel` can ship the very same code to pool
workers — parallel and serial batches agree by construction.

Between batches the executor's database version token is re-checked;
a mutation mid-run raises :class:`~repro.errors.StaleDataError` rather
than silently mixing two content versions into one result (see
``docs/engine.md`` § Partitioned execution).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field

from repro.data.database import Row
from repro.engine.plan import (
    PARTITIONABLE_OPS,
    DivisionOp,
    HashJoinOp,
    HashSemijoinOp,
    MultiwayJoinOp,
    NestedLoopSemijoinOp,
    PartitionedOp,
    PlanNode,
)
from repro.errors import SchemaError, StaleDataError
from repro.setjoins.division import DIVISION_ALGORITHMS, DIVISION_EQ_ALGORITHMS

#: Hard cap on the planner's predicted batch count (a backstop against
#: absurd upper-bound/budget ratios; the executor packs exactly anyway).
MAX_PARTITIONS = 4096

#: Mid-query re-packing prices remaining batches with the *observed*
#: output rate times this headroom factor, so one lucky batch does not
#: immediately re-pack the rest right up against the budget.
ADAPTIVE_SAFETY = 2.0


# ----------------------------------------------------------------------
# Planning: estimate-driven sizing
# ----------------------------------------------------------------------


def in_flight_upper(cost_model, node: PlanNode) -> float:
    """Sound upper bound on ``node``'s unpartitioned rows in flight.

    One-shot execution materializes the operator's inputs and its
    output simultaneously, so the bound is the sum of the children's
    ``upper`` estimates plus the operator's own.  Infinite whenever any
    estimate is unsound (zero-stats planning certifies nothing).
    """
    estimate = cost_model.estimate(node)
    if not estimate.sound:
        return math.inf
    total = estimate.upper
    for child in node.children():
        total += cost_model.estimate(child).upper
    return total


def planned_partitions(upper: float, budget: int) -> int:
    """The predicted batch count: ``ceil(upper / budget)``, capped."""
    if not math.isfinite(upper) or budget < 1:
        return MAX_PARTITIONS
    return max(1, min(MAX_PARTITIONS, math.ceil(upper / budget)))


def apply_partitioning(plan: PlanNode, cost_model, budget: int) -> PlanNode:
    """Post-pass: wrap every oversized partitionable operator in ``plan``.

    Runs *after* all of the planner's cost comparisons, so the scatter
    surcharge a :class:`~repro.engine.plan.PartitionedOp` adds can
    never flip an operator-choice decision — the budget, not the cost
    model, is what forces batching.  The tree is rebuilt bottom-up
    (children first, so an operator's in-flight bound is computed over
    its possibly-wrapped children); shared sub-plans stay shared, and
    untouched subtrees are returned as the same objects so executor
    memoization is unaffected.
    """
    from dataclasses import fields, replace

    memo: dict[int, PlanNode] = {}

    def rebuild(node: PlanNode) -> PlanNode:
        cached = memo.get(id(node))
        if cached is not None:
            return cached
        if isinstance(node, PartitionedOp):
            # Already partitioned (re-applying to a planned plan):
            # keep the existing wrapper — and its budget — untouched
            # rather than wrapping its inner operator a second time.
            memo[id(node)] = node
            return node
        changes = {}
        for f in fields(node):
            value = getattr(node, f.name)
            if isinstance(value, PlanNode):
                new = rebuild(value)
                if new is not value:
                    changes[f.name] = new
        rebuilt = replace(node, **changes) if changes else node
        if isinstance(rebuilt, PARTITIONABLE_OPS):
            upper = in_flight_upper(cost_model, rebuilt)
            if math.isfinite(upper) and upper > budget:
                partitions = planned_partitions(upper, budget)
                note = (
                    f"in-flight ub {upper:.0f} > budget {budget}: "
                    f"{partitions} batch(es) planned (exact packing at "
                    "run time)"
                )
                replicated = None
                if isinstance(rebuilt, NestedLoopSemijoinOp):
                    replicated = rebuilt.right
                elif isinstance(rebuilt, DivisionOp):
                    replicated = rebuilt.divisor
                if replicated is not None:
                    rep = cost_model.estimate(replicated)
                    if rep.sound and rep.upper >= budget:
                        note += (
                            "; replicated side may meet the budget "
                            "alone — one-shot fallback possible"
                        )
                rebuilt = PartitionedOp(
                    rebuilt, partitions, budget, note=note
                )
        elif isinstance(rebuilt, MultiwayJoinOp):
            # Generic joins batch nothing (working set = inputs +
            # certified output), so an over-budget one is annotated,
            # never wrapped — the planner normally refuses the
            # collapse first, but a plan built by hand (or statistics
            # moving after planning) can still land here.
            upper = in_flight_upper(cost_model, rebuilt)
            if math.isfinite(upper) and upper > budget:
                extra = (
                    f"in-flight ub {upper:.0f} > budget {budget}: "
                    "refusing PartitionedOp fusion — multiway join "
                    "runs one-shot (inputs + AGM-bounded output)"
                )
                merged = (
                    f"{rebuilt.note}; {extra}" if rebuilt.note else extra
                )
                rebuilt = replace(rebuilt, note=merged)
        memo[id(node)] = rebuilt
        return rebuilt

    return rebuild(plan)


# ----------------------------------------------------------------------
# Execution records
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BatchRecord:
    """One executed batch: what it held in flight, and why."""

    groups: int  #: atomic key groups packed into this batch
    input_rows: int  #: fragment rows scattered into the batch
    output_rows: int  #: rows the batch emitted
    in_flight: int  #: input_rows + replicated rows + output_rows
    fallback: bool = False  #: deliberate one-shot batch (capacity ≤ 0)
    adaptive: bool = False  #: packed with observed-rate (not worst-case) weights

    def within(self, budget: int) -> bool:
        """The packing invariant: under budget, or a lone atomic group.

        A ``fallback`` batch is the deliberate one-shot degradation of
        :func:`packed_or_fallback` — the replicated side alone met the
        budget, so no packing could have helped — and counts as within.
        An ``adaptive`` batch was packed with observed-rate output
        weights instead of worst-case ones, so its *inputs* are still
        budget-bounded by construction but its output (and hence
        ``in_flight``) is only expected-bounded — the deliberate trade
        of the mid-query re-plan (``docs/engine.md`` § Adaptive
        feedback).
        """
        if self.fallback:
            return True
        if self.adaptive:
            return self.input_rows <= budget or self.groups <= 1
        return self.in_flight <= budget or self.groups <= 1


@dataclass
class PartitionRun:
    """Everything one :class:`PartitionedOp` execution observed.

    ``planned`` is the planner's predicted batch count (from sound
    upper bounds); ``actual()`` is what exact-weight packing produced —
    the estimated-vs-actual pair the partition benchmarks assert on.
    """

    planned: int
    budget: int
    replicated_rows: int = 0
    batches: list[BatchRecord] = field(default_factory=list)
    #: why packing was abandoned for one-shot execution, if it was
    fallback: str | None = None
    #: mid-query re-packs of the remaining batches (adaptive feedback)
    replans: int = 0

    def actual(self) -> int:
        return len(self.batches)

    def peak_in_flight(self) -> int:
        return max((b.in_flight for b in self.batches), default=0)

    def total_output(self) -> int:
        return sum(b.output_rows for b in self.batches)

    def within_budget(self) -> bool:
        return all(b.within(self.budget) for b in self.batches)

    def render(self) -> str:
        line = (
            f"batches={self.actual()} (planned {self.planned}) "
            f"peak-in-flight={self.peak_in_flight()} "
            f"budget={self.budget}"
        )
        if self.fallback:
            line += f" [one-shot fallback: {self.fallback}]"
        if self.replans:
            line += f" [mid-query re-packs: {self.replans}]"
        return line


# ----------------------------------------------------------------------
# Packing
# ----------------------------------------------------------------------


def pack_groups(
    weights: dict[object, int], capacity: float
) -> list[tuple[object, ...]]:
    """Best-fit-decreasing packing of key groups into batches.

    Groups are placed heaviest-first (ties broken by ``repr`` of the
    key, so packing is deterministic for given inputs) into the open
    batch with the *least* remaining room that still fits, found by
    binary search over a sorted list of batch residuals — no linear
    scan over open batches, so packing does comparisons in
    ``O(G log G)`` rather than degrading quadratic when few groups fit
    together.  A group heavier than ``capacity`` becomes a singleton
    batch directly, without any search (capacity ≤ 0 makes *every*
    group one).  Every batch satisfies ``total ≤ capacity`` or is a
    singleton, which is exactly the invariant
    :meth:`BatchRecord.within` states against the budget.
    """
    order = sorted(weights.items(), key=lambda kv: (-kv[1], repr(kv[0])))
    singletons: list[tuple[object, ...]] = []
    batches: list[list[object]] = []
    residuals: list[tuple[float, int]] = []  # sorted (room left, batch id)
    for key, weight in order:
        if weight > capacity:
            singletons.append((key,))
            continue
        pos = bisect.bisect_left(residuals, (weight, -1))
        if pos < len(residuals):  # tightest open batch the group fits
            room, batch_id = residuals.pop(pos)
            batches[batch_id].append(key)
            bisect.insort(residuals, (room - weight, batch_id))
        else:
            batches.append([key])
            bisect.insort(residuals, (capacity - weight, len(batches) - 1))
    # Heaviest-first ordering puts every oversized singleton before
    # every packed batch, keeping the returned order deterministic.
    return singletons + [tuple(batch) for batch in batches]


def packed_or_fallback(
    weights: dict[object, int], budget: int, replicated: int
) -> tuple[list[tuple[object, ...]], str | None]:
    """Pack under ``budget − replicated``, or one-shot when it vanishes.

    Operators with a replicated side pack against the capacity left
    after that side is charged to every batch.  When the replicated
    side alone meets the budget, that capacity is ≤ 0 and
    :func:`pack_groups` would make every group a singleton batch — the
    replicated side rescanned once per group for *zero* memory gain
    (each batch already exceeds the budget by the replicated rows
    alone).  In that case the only sane shape is a single batch.

    Returns ``(batches, reason)``: ``reason`` is ``None`` when normal
    packing applied, else a human-readable explanation recorded on the
    :class:`PartitionRun` (and rendered by ``--stats`` reports).
    """
    if not weights:
        return [], None
    capacity = budget - replicated
    if capacity <= 0:
        reason = (
            f"replicated side ({replicated} rows) meets the "
            f"{budget}-row budget alone; ran one-shot instead of "
            f"{len(weights)} singleton batches"
        )
        return [tuple(sorted(weights, key=repr))], reason
    return pack_groups(weights, capacity), None


# ----------------------------------------------------------------------
# Batch kernels (pure, picklable — shared by serial and parallel paths)
# ----------------------------------------------------------------------


def keyed_batch_kernel(
    pairs: list[tuple[list[Row], list[Row]]],
    rest: tuple,
    join: bool,
) -> list[Row]:
    """One hash-join / hash-semijoin batch over key-matched fragments.

    ``pairs`` holds the (left fragment, right fragment) for each key
    group packed into the batch; ``rest`` the non-equality atoms still
    to check.  Joins emit concatenated rows, semijoins the left row on
    first witness.  Module-level and argument-pure so a process-pool
    worker can run it on pickled fragments.
    """
    out: list[Row] = []
    for lefts, rights in pairs:
        for lrow in lefts:
            if join:
                for rrow in rights:
                    if all(atom.holds(lrow, rrow) for atom in rest):
                        out.append(lrow + rrow)
            elif any(
                all(atom.holds(lrow, rrow) for atom in rest)
                for rrow in rights
            ):
                out.append(lrow)
    return out


def semijoin_batch_kernel(
    left_rows, right_rows, cond
) -> list[Row]:
    """One θ-semijoin batch: left fragment against the replicated right."""
    return [
        lrow
        for lrow in left_rows
        if any(cond.holds(lrow, rrow) for rrow in right_rows)
    ]


def division_batch_kernel(
    fragment: list[Row], divisor: list, method: str, eq: bool
) -> list[Row]:
    """One division batch: the direct algorithm on a candidate fragment.

    The algorithm is looked up in the registries at call time (not
    bound at scatter time), so tests that monkeypatch an algorithm see
    the patched version in every batch.
    """
    registry = DIVISION_EQ_ALGORITHMS if eq else DIVISION_ALGORITHMS
    return [(a,) for a in registry[method](fragment, divisor)]


# ----------------------------------------------------------------------
# Batch execution
# ----------------------------------------------------------------------


def run_partitioned(executor, node: PartitionedOp) -> list[Row]:
    """Execute ``node.inner`` in budget-bounded batches.

    Called by :meth:`repro.engine.executor.Executor._compute`; returns
    the full result (the union over batches — key-disjoint fragments
    make it exact) and records a :class:`PartitionRun` in the
    executor's :class:`~repro.engine.executor.ExecutionStats`.
    """
    inner = node.inner
    if isinstance(inner, (HashJoinOp, HashSemijoinOp)):
        rows, run = _run_keyed(executor, node, inner)
    elif isinstance(inner, NestedLoopSemijoinOp):
        rows, run = _run_left_batched(executor, node, inner)
    elif isinstance(inner, DivisionOp):
        rows, run = _run_division(executor, node, inner)
    else:  # pragma: no cover - PartitionedOp.__post_init__ rejects these
        raise SchemaError(
            f"cannot partition {type(inner).__name__}"
        )
    executor.stats.partition_runs[node] = run
    return rows


def _check_version(executor, node: PartitionedOp) -> None:
    """Fail fast if the database mutated between batches."""
    if executor.backend.version_token() != executor._version:
        raise StaleDataError(
            "relation contents changed between batches of "
            f"{node.label()}; earlier batches saw the old contents — "
            "re-run the query (caches are invalidated on next use)"
        )


def _run_keyed(executor, node: PartitionedOp, inner) -> tuple[list, PartitionRun]:
    """Hash join / hash semijoin: both sides grouped on equality keys.

    Both groupings go through the executor's
    :class:`~repro.engine.executor.IndexCache` under the same
    ``(logical expression, positions)`` keys the one-shot hash
    operators use, so partitioned and one-shot executions of the same
    input share a single build and re-executing against unchanged
    contents regroups nothing.  Keys present on only one side are
    pruned at scatter time: with no partner rows they cannot produce
    output (``rest`` atoms only filter further), so they never consume
    batch capacity or rows in flight.
    """
    eq = inner.cond.by_op("=")
    left_positions = tuple(a.i for a in eq)
    right_positions = tuple(a.j for a in eq)
    rest = tuple(a for a in inner.cond if a.op != "=")
    join = isinstance(inner, HashJoinOp)

    left_groups = executor.indexes.index_for(
        inner.left.logical, executor._rows(inner.left), left_positions
    )
    right_groups = executor.indexes.index_for(
        inner.right.logical, executor._rows(inner.right), right_positions
    )
    sizes: dict[object, tuple[int, int]] = {}
    weights: dict[object, int] = {}
    for key in left_groups.keys() & right_groups.keys():
        n_left = len(left_groups[key])
        n_right = len(right_groups[key])
        sizes[key] = (n_left, n_right)
        worst_output = n_left * n_right if join else n_left
        weights[key] = n_left + n_right + worst_output

    def _weight(key: object, rate: float) -> int:
        n_left, n_right = sizes[key]
        worst = n_left * n_right if join else n_left
        return n_left + n_right + max(1, math.ceil(worst * rate))

    # Worst-case weights to start; the mid-query re-plan below re-packs
    # the *remaining* batches with observed-rate weights when actuals
    # show the worst case priced them absurdly (adaptive feedback).
    threshold = getattr(executor, "_replan_threshold", None)
    assumed_rate = 1.0
    done_out = 0
    done_worst = 0

    run = PartitionRun(node.partitions, node.budget)
    out: list[Row] = []
    pending = list(pack_groups(weights, node.budget))
    while pending:
        keys = pending.pop(0)
        _check_version(executor, node)
        pairs = [(left_groups[key], right_groups[key]) for key in keys]
        input_rows = sum(len(ls) + len(rs) for ls, rs in pairs)
        rows = keyed_batch_kernel(pairs, rest, join)
        out.extend(rows)
        run.batches.append(
            BatchRecord(
                groups=len(keys),
                input_rows=input_rows,
                output_rows=len(rows),
                in_flight=input_rows + len(rows),
                adaptive=run.replans > 0,
            )
        )
        done_out += len(rows)
        for key in keys:
            n_left, n_right = sizes[key]
            done_worst += n_left * n_right if join else n_left
        if threshold is None or not pending or done_worst <= 0:
            continue
        # Between-batch checkpoint (same spot the StaleDataError check
        # runs): if the batches executed so far produced far fewer rows
        # than the worst-case bound they were priced at, re-pack the
        # remaining groups with observed-rate weights — fewer, fuller
        # batches instead of thousands of near-empty ones.
        observed = max(done_out / done_worst, 1.0 / done_worst)
        if assumed_rate / observed >= threshold:
            assumed_rate = min(1.0, observed * ADAPTIVE_SAFETY)
            remaining = [key for batch in pending for key in batch]
            pending = list(
                pack_groups(
                    {k: _weight(k, assumed_rate) for k in remaining},
                    node.budget,
                )
            )
            run.replans += 1
    return out, run


def _run_left_batched(
    executor, node: PartitionedOp, inner: NestedLoopSemijoinOp
) -> tuple[list, PartitionRun]:
    """θ-semijoin: batch left rows; the right side goes to every batch.

    Each left row is its own atomic group (no key to group by) of
    weight 2 — the row plus the at-most-one output row it can emit.
    When the replicated right side alone meets the budget the batches
    collapse to one (:func:`packed_or_fallback`) — per-row batches
    would rescan the right side once per left row for no memory gain.
    """
    left_rows = executor._rows(inner.left)
    right_rows = executor._rows(inner.right)
    replicated = len(right_rows)
    weights = {row: 2 for row in left_rows}

    run = PartitionRun(node.partitions, node.budget, replicated)
    batches, run.fallback = packed_or_fallback(
        weights, node.budget, replicated
    )
    out: list[Row] = []
    for batch in batches:
        _check_version(executor, node)
        rows = semijoin_batch_kernel(batch, right_rows, inner.cond)
        out.extend(rows)
        run.batches.append(
            BatchRecord(
                groups=len(batch),
                input_rows=len(batch),
                output_rows=len(rows),
                in_flight=len(batch) + replicated + len(rows),
                fallback=run.fallback is not None,
            )
        )
    return out, run


def _run_division(
    executor, node: PartitionedOp, inner: DivisionOp
) -> tuple[list, PartitionRun]:
    """Division: partition the dividend by candidate; replicate the divisor.

    A candidate's *entire* B-set must sit in one batch for the
    containment/equality test to be answerable there, so the atomic
    group is the candidate's dividend rows (weight ``n_a + 1``).  Each
    batch runs the same direct algorithm the unpartitioned operator
    would (the ``method``/``eq`` registry of
    :mod:`repro.setjoins.division`) on its fragment; quotients from
    disjoint candidate sets union exactly.  Like the keyed joins, the
    per-candidate grouping goes through the executor's
    :class:`~repro.engine.executor.IndexCache`, so re-executions
    against unchanged contents regroup nothing.
    """
    divisor_rows = executor._rows(inner.divisor)
    run = PartitionRun(node.partitions, node.budget, len(divisor_rows))
    if not divisor_rows and inner.empty_divisor == "none":
        # γ-plan semantics: empty divisor ⇒ empty result, no batches.
        return [], run
    divisor = [row[0] for row in divisor_rows]
    groups = executor.indexes.index_for(
        inner.dividend.logical, executor._rows(inner.dividend), (1,)
    )
    weights = {key: len(rows) + 1 for key, rows in groups.items()}

    batches, run.fallback = packed_or_fallback(
        weights, node.budget, len(divisor_rows)
    )
    out: list[Row] = []
    for keys in batches:
        _check_version(executor, node)
        fragment = [row for key in keys for row in groups[key]]
        rows = division_batch_kernel(
            fragment, divisor, inner.method, inner.eq
        )
        out.extend(rows)
        run.batches.append(
            BatchRecord(
                groups=len(keys),
                input_rows=len(fragment),
                output_rows=len(rows),
                in_flight=len(fragment) + len(divisor_rows) + len(rows),
                fallback=run.fallback is not None,
            )
        )
    return out, run
