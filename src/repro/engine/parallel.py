"""Shard-per-worker parallel execution of key-disjoint batches.

The partition layer (:mod:`repro.engine.partition`) already cuts the
big operators into key-disjoint batches whose union is exactly the
one-shot result.  This module is the raw-speed lever that design was
built for: the same batches, produced by the same scatter and run by
the same kernels, dispatched across a
:class:`concurrent.futures.ProcessPoolExecutor` instead of a serial
loop.

Three properties the implementation is organized around:

* **Parallel ≡ serial by construction.**  Workers run the module-level
  kernels of :mod:`repro.engine.partition` — the identical code the
  serial partitioned path runs in-process.  When a
  :class:`~repro.engine.plan.ParallelOp` carries a budget, the batches
  are the exact ones :func:`~repro.engine.partition.packed_or_fallback`
  would produce serially; without a budget they are sized to balance
  *work* (not memory) across ``workers × OVERSUBSCRIPTION`` batches so
  one hot key cannot serialize the run.  How fragments *reach* the
  kernels depends on the executor's storage backend: on the memory
  backend they are pickled through the pool (the original transport);
  on an attached backend (shm/mmap) the scatter writes every distinct
  fragment once into a shared columnar shipment and the tasks carry
  only block descriptors — workers attach by segment name or spill
  path and decode in place (:mod:`repro.storage.ship`), which is what
  makes the dispatch pay off on multi-core machines.
* **Certified dispatch only.**  The planner post-pass
  (:func:`apply_parallelism`) consults
  :func:`~repro.engine.cost.parallel_cost_split`: a sound bound on the
  operator's own splittable work, the scatter pass, and a per-row IPC
  surcharge on everything that might cross the process boundary.  An
  operator is sharded only when the certified parallel cost beats the
  certified serial cost — zero-stats plans never parallelize,
  mirroring the partition gate.
* **Staleness over wrong answers.**  The database version token is
  checked before the scatter and again as each worker's result is
  gathered.  A mutation mid-query raises
  :class:`~repro.errors.StaleDataError` instead of mixing two content
  versions into one result — the same contract serial batches honour,
  now covering the window while work is out at the pool.

Worker pools are cached per worker count and shut down at interpreter
exit.  If a pool cannot be created or breaks mid-run (a killed worker),
execution falls back to running the same batches inline and records
why on the :class:`ParallelRun`, so a degraded environment degrades to
serial speed, not to failure.
"""

from __future__ import annotations

import atexit
import math
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.data.database import Row
from repro.engine.partition import (
    BatchRecord,
    PartitionRun,
    _check_version,
    division_batch_kernel,
    in_flight_upper,
    keyed_batch_kernel,
    pack_groups,
    packed_or_fallback,
    planned_partitions,
    semijoin_batch_kernel,
)
from repro.engine.plan import (
    PARTITIONABLE_OPS,
    DivisionOp,
    HashJoinOp,
    HashSemijoinOp,
    NestedLoopSemijoinOp,
    ParallelOp,
    PartitionedOp,
    PlanNode,
)
from repro.errors import SchemaError
from repro.storage.ship import ShipmentWriter, run_shipped_task

#: Batches per worker when no memory budget shapes them: enough slack
#: that a skewed batch does not serialize the tail, few enough that the
#: fixed per-batch dispatch cost stays negligible.
OVERSUBSCRIPTION = 4


def available_cpus() -> int:
    """CPUs actually usable by this process, not the machine's total.

    ``os.cpu_count()`` reports installed cores even when an affinity
    mask or cgroup quota pins the process to fewer — which is how the
    seed benchmark recorded ``cpu_count: 4`` worth of workers on one
    usable core and a 0.95× "speedup".  Prefers
    ``os.process_cpu_count`` (3.13+), then the scheduler affinity
    mask, then ``os.cpu_count`` as the last resort; the benchmarks and
    their speedup assertions gate on this figure.
    """
    getter = getattr(os, "process_cpu_count", None)
    if getter is not None:
        counted = getter()
        if counted:
            return counted
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


# ----------------------------------------------------------------------
# Run records
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WorkerSlice:
    """One worker process's share of a run, aggregated over its batches."""

    pid: int
    batches: int
    seconds: float  #: summed in-worker wall clock across its batches


@dataclass
class ParallelRun(PartitionRun):
    """Everything one :class:`ParallelOp` execution observed.

    Extends :class:`~repro.engine.partition.PartitionRun` (and is
    stored in the same ``stats.partition_runs`` slot, so reports and
    ``max_in_flight()`` need no second bookkeeping path) with the
    worker count, per-batch ``(pid, seconds)`` timings aligned with
    ``batches``, and — when the pool was bypassed — the reason.
    ``budget`` may be ``None``: speed-motivated sharding of an operator
    that needed no memory partitioning has no per-batch row bound.
    """

    budget: int | None = None
    workers: int = 1
    #: per-batch ``(worker pid, in-worker seconds)``; index-aligned
    #: with ``batches``
    timings: list[tuple[int, float]] = field(default_factory=list)
    #: why batches ran inline instead of on the pool, if they did
    pool_fallback: str | None = None
    #: how fragments crossed the process boundary: ``"shm"``/``"file"``
    #: when a sealed shipment carried them (attached backends),
    #: ``None`` for pickled transport or inline execution
    transport: str | None = None

    def within_budget(self) -> bool:
        if self.budget is None:
            return True
        return super().within_budget()

    def worker_slices(self) -> tuple[WorkerSlice, ...]:
        """Per-worker batch counts and wall-clock, sorted by pid."""
        counts: dict[int, int] = {}
        seconds: dict[int, float] = {}
        for pid, elapsed in self.timings:
            counts[pid] = counts.get(pid, 0) + 1
            seconds[pid] = seconds.get(pid, 0.0) + elapsed
        return tuple(
            WorkerSlice(pid, counts[pid], seconds[pid])
            for pid in sorted(counts)
        )

    def render(self) -> str:
        line = (
            f"batches={self.actual()} (planned {self.planned}) "
            f"peak-in-flight={self.peak_in_flight()} "
            f"budget={'none' if self.budget is None else self.budget} "
            f"workers={self.workers}"
        )
        if self.transport:
            line += f" transport={self.transport}"
        if self.fallback:
            line += f" [one-shot fallback: {self.fallback}]"
        if self.pool_fallback:
            line += f" [ran inline: {self.pool_fallback}]"
        for worker in self.worker_slices():
            line += (
                f"\n    worker {worker.pid}: {worker.batches} batch(es) "
                f"{worker.seconds:.3f}s"
            )
        return line


# ----------------------------------------------------------------------
# Worker pools
# ----------------------------------------------------------------------

_pools: dict[int, ProcessPoolExecutor] = {}


def _pool_for(workers: int) -> ProcessPoolExecutor:
    """The cached pool with ``workers`` workers, created on first use.

    Pools are expensive to spin up, so one per worker count lives for
    the interpreter's lifetime (they idle at zero cost).  The ``fork``
    start method is preferred where available: workers inherit the
    loaded modules instead of re-importing them, and the kernels only
    ever touch the pickled arguments, never ambient state.
    """
    pool = _pools.get(workers)
    if pool is None:
        context = None
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        _pools[workers] = pool
    return pool


def shutdown_worker_pools() -> None:
    """Shut down every cached pool (registered atexit; tests may call)."""
    while _pools:
        __, pool = _pools.popitem()
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_worker_pools)


def _run_task(kernel, args) -> tuple[list[Row], float, int]:
    """Worker-side batch body: run the kernel, report time and pid.

    Module-level so the pool can pickle it by reference; the in-worker
    wall clock (not the submit-to-result latency, which includes queue
    wait) is what the per-worker report aggregates.
    """
    start = time.perf_counter()
    rows = kernel(*args)
    return rows, time.perf_counter() - start, os.getpid()


# ----------------------------------------------------------------------
# Scatter: plan batches as picklable tasks
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _Task:
    """One batch, ready to run locally or ship to a worker."""

    groups: int
    input_rows: int
    kernel: object  # a module-level kernel function
    args: tuple  # picklable kernel arguments


def _work_capacity(weights: dict[object, int], workers: int) -> int:
    """Per-batch work target for budget-free (speed-only) sharding."""
    total = sum(weights.values())
    target = max(workers * OVERSUBSCRIPTION, 1)
    return max(math.ceil(total / target), 1)


def _scatter_keyed(
    executor, node: ParallelOp, inner, ship: ShipmentWriter | None
) -> tuple[list[_Task], int, str | None]:
    """Hash join / hash semijoin: group both sides on the equality keys.

    Identical grouping (through the shared
    :class:`~repro.engine.executor.IndexCache`) and — under a budget —
    identical packing to the serial ``_run_keyed``.  Without a budget,
    weights switch from rows-in-flight to *work* (the pair count a key
    group can generate) so batches even out worker load.  With a
    shipment writer, each key group's fragment is registered once and
    tasks carry block references instead of the rows.
    """
    eq = inner.cond.by_op("=")
    left_positions = tuple(a.i for a in eq)
    right_positions = tuple(a.j for a in eq)
    rest = tuple(a for a in inner.cond if a.op != "=")
    join = isinstance(inner, HashJoinOp)

    left_groups = executor.indexes.index_for(
        inner.left.logical, executor._rows(inner.left), left_positions
    )
    right_groups = executor.indexes.index_for(
        inner.right.logical, executor._rows(inner.right), right_positions
    )
    shared = left_groups.keys() & right_groups.keys()
    if node.budget is not None:
        weights = {}
        for key in shared:
            n_left = len(left_groups[key])
            n_right = len(right_groups[key])
            worst = n_left * n_right if join else n_left
            weights[key] = n_left + n_right + worst
        batches = pack_groups(weights, node.budget)
    else:
        weights = {}
        for key in shared:
            n_left = len(left_groups[key])
            n_right = len(right_groups[key])
            pairs = n_left * n_right if (join or rest) else 0
            weights[key] = n_left + n_right + pairs
        batches = pack_groups(
            weights, _work_capacity(weights, node.workers)
        )

    tasks = []
    for keys in batches:
        pairs = [(left_groups[key], right_groups[key]) for key in keys]
        input_rows = sum(len(ls) + len(rs) for ls, rs in pairs)
        if ship is not None:
            pairs = [
                (ship.rows(ls), ship.rows(rs)) for ls, rs in pairs
            ]
        tasks.append(
            _Task(len(keys), input_rows, keyed_batch_kernel,
                  (pairs, rest, join))
        )
    return tasks, 0, None


def _scatter_semijoin(
    executor, node: ParallelOp, inner: NestedLoopSemijoinOp,
    ship: ShipmentWriter | None,
) -> tuple[list[_Task], int, str | None]:
    """θ-semijoin: batch left rows; the right side ships to every batch.

    The replicated right side is where descriptor transport wins most:
    the writer's identity dedup encodes it once, and every task's
    reference resolves to the same block — pickled transport
    re-serializes it per task.
    """
    left_rows = executor._rows(inner.left)
    right_rows = list(executor._rows(inner.right))
    replicated = len(right_rows)
    weights = {row: 2 for row in left_rows}
    if node.budget is not None:
        batches, fallback = packed_or_fallback(
            weights, node.budget, replicated
        )
    else:
        batches = pack_groups(
            weights, _work_capacity(weights, node.workers)
        )
        fallback = None
    shipped_right = (
        ship.rows(right_rows) if ship is not None else right_rows
    )
    tasks = []
    for batch in batches:
        batch_rows = list(batch)
        shipped_batch = (
            ship.rows(batch_rows) if ship is not None else batch_rows
        )
        tasks.append(
            _Task(len(batch), len(batch), semijoin_batch_kernel,
                  (shipped_batch, shipped_right, inner.cond))
        )
    return tasks, replicated, fallback


def _scatter_division(
    executor, node: ParallelOp, inner: DivisionOp,
    ship: ShipmentWriter | None,
) -> tuple[list[_Task], int, str | None]:
    """Division: shard the dividend by candidate; ship the divisor.

    Like the θ-semijoin's right side, the divisor is replicated into
    every batch and therefore encoded exactly once under descriptor
    transport (as a scalar value block).
    """
    divisor_rows = executor._rows(inner.divisor)
    replicated = len(divisor_rows)
    if not divisor_rows and inner.empty_divisor == "none":
        # γ-plan semantics: empty divisor ⇒ empty result, no batches.
        return [], replicated, None
    divisor = [row[0] for row in divisor_rows]
    groups = executor.indexes.index_for(
        inner.dividend.logical, executor._rows(inner.dividend), (1,)
    )
    if node.budget is not None:
        weights = {key: len(rows) + 1 for key, rows in groups.items()}
        batches, fallback = packed_or_fallback(
            weights, node.budget, replicated
        )
    else:
        # Per-candidate *work* ~ its rows plus one divisor probe pass.
        weights = {
            key: len(rows) + max(len(divisor), 1)
            for key, rows in groups.items()
        }
        batches = pack_groups(
            weights, _work_capacity(weights, node.workers)
        )
        fallback = None
    shipped_divisor = (
        ship.values(divisor) if ship is not None else divisor
    )
    tasks = []
    for keys in batches:
        fragment = [row for key in keys for row in groups[key]]
        shipped_fragment = (
            ship.rows(fragment) if ship is not None else fragment
        )
        tasks.append(
            _Task(len(keys), len(fragment), division_batch_kernel,
                  (shipped_fragment, shipped_divisor, inner.method,
                   inner.eq))
        )
    return tasks, replicated, fallback


# ----------------------------------------------------------------------
# Gather: pool dispatch with staleness re-checks
# ----------------------------------------------------------------------


def run_parallel(executor, node: ParallelOp) -> list[Row]:
    """Execute ``node.inner``'s batches across the worker pool.

    Called by :meth:`repro.engine.executor.Executor._compute`; returns
    the full result (key-disjoint batches union exactly) and records a
    :class:`ParallelRun` in the executor's stats.  Single-batch and
    ``workers=1`` runs skip the pool entirely; a missing or broken
    pool degrades to inline execution of the same batches.

    When the executor's backend is *attached* (shm/mmap), the scatter
    registers fragments with a :class:`~repro.storage.ship.
    ShipmentWriter` and the pool path seals them into one shared
    columnar shipment that workers attach to — tasks then carry block
    descriptors, not rows.  Every fallback path (single batch, no
    pool, pool broke, shipment storage unavailable) resolves the same
    references locally at zero encode cost, so degraded environments
    run the identical batches inline.
    """
    inner = node.inner
    ship: ShipmentWriter | None = None
    if executor.backend.attached and node.workers > 1:
        ship = ShipmentWriter(
            "file" if executor.backend.kind == "mmap" else "shm"
        )
    if isinstance(inner, (HashJoinOp, HashSemijoinOp)):
        tasks, replicated, fallback = _scatter_keyed(
            executor, node, inner, ship
        )
    elif isinstance(inner, NestedLoopSemijoinOp):
        tasks, replicated, fallback = _scatter_semijoin(
            executor, node, inner, ship
        )
    elif isinstance(inner, DivisionOp):
        tasks, replicated, fallback = _scatter_division(
            executor, node, inner, ship
        )
    else:  # pragma: no cover - ParallelOp.__post_init__ rejects these
        raise SchemaError(f"cannot parallelize {type(inner).__name__}")

    run = ParallelRun(
        planned=node.partitions,
        budget=node.budget,
        replicated_rows=replicated,
        workers=node.workers,
        fallback=fallback,
    )
    out: list[Row] = []
    if node.workers <= 1 or len(tasks) <= 1:
        reason = (
            "single batch" if len(tasks) <= 1 else "workers=1"
        )
        _gather_inline(executor, node, run, tasks, out, reason, ship)
    else:
        try:
            pool = _pool_for(node.workers)
        except OSError as error:
            _gather_inline(
                executor, node, run, tasks, out,
                f"pool unavailable ({error})", ship,
            )
        else:
            shipment = None
            try:
                try:
                    if ship is not None and len(ship):
                        shipment = ship.seal()
                        run.transport = ship.transport
                except OSError as error:
                    _gather_inline(
                        executor, node, run, tasks, out,
                        f"shipment storage unavailable ({error})", ship,
                    )
                else:
                    try:
                        _gather_pool(
                            executor, node, run, pool, tasks, out,
                            shipment,
                        )
                    except BrokenProcessPool as error:
                        # Dispose of the broken pool and redo the whole
                        # run inline — partial results may be missing
                        # batches.
                        _pools.pop(node.workers, None)
                        pool.shutdown(wait=False, cancel_futures=True)
                        run.batches.clear()
                        run.timings.clear()
                        run.transport = None
                        out.clear()
                        _gather_inline(
                            executor, node, run, tasks, out,
                            f"worker pool broke ({error})", ship,
                        )
            finally:
                if shipment is not None:
                    shipment.close()
    executor.stats.partition_runs[node] = run
    return out


def _record(run: ParallelRun, task: _Task, rows, seconds, pid) -> None:
    run.batches.append(
        BatchRecord(
            groups=task.groups,
            input_rows=task.input_rows,
            output_rows=len(rows),
            in_flight=task.input_rows + run.replicated_rows + len(rows),
            fallback=run.fallback is not None,
        )
    )
    run.timings.append((pid, seconds))


def _gather_inline(
    executor, node, run: ParallelRun, tasks, out,
    reason: str | None, ship: ShipmentWriter | None = None,
) -> None:
    """Run the batches in-process (serial semantics, same kernels).

    Shipment block references resolve to the original fragment objects
    (:meth:`~repro.storage.ship.ShipmentWriter.resolve_local`) — no
    encoding happened or happens on this path.
    """
    if reason is not None and node.workers > 1:
        run.pool_fallback = reason
    for task in tasks:
        _check_version(executor, node)
        args = task.args if ship is None else ship.resolve_local(task.args)
        rows, seconds, pid = _run_task(task.kernel, args)
        out.extend(rows)
        _record(run, task, rows, seconds, pid)


def _gather_pool(
    executor, node, run: ParallelRun, pool, tasks, out, shipment=None
) -> None:
    """Dispatch batches to the pool; re-check the version per gather.

    Futures are gathered in submission order so the result row order —
    and every recorded batch — is deterministic for given inputs.  The
    version token is checked before anything is submitted and again as
    each result is folded in: a mutation while work is out at the pool
    raises :class:`~repro.errors.StaleDataError` before any later
    result could mix content versions.  On staleness the remaining
    futures are cancelled (best-effort; running ones finish and are
    dropped with the pool's blessing — workers never see the database,
    only shipped fragments).

    With a sealed ``shipment``, tasks are dispatched through
    :func:`~repro.storage.ship.run_shipped_task`: the pickled payload
    per task is the locator + block table + argument skeleton, and the
    fragment bytes travel through the shared segment/spill file
    instead.
    """
    _check_version(executor, node)
    if shipment is None:
        futures = [
            pool.submit(_run_task, task.kernel, task.args)
            for task in tasks
        ]
    else:
        futures = [
            pool.submit(
                run_shipped_task, shipment.locator, shipment.blocks,
                task.kernel, task.args,
            )
            for task in tasks
        ]
    try:
        for task, future in zip(tasks, futures):
            rows, seconds, pid = future.result()
            _check_version(executor, node)
            out.extend(rows)
            _record(run, task, rows, seconds, pid)
    except BaseException:
        for future in futures:
            future.cancel()
        raise


# ----------------------------------------------------------------------
# Planning: the certified-dispatch post-pass
# ----------------------------------------------------------------------


def apply_parallelism(
    plan: PlanNode, cost_model, workers: int
) -> PlanNode:
    """Post-pass: shard operators whose bounds certify a parallel win.

    Runs after :func:`~repro.engine.partition.apply_partitioning` (and,
    like it, after every operator-choice cost comparison, so the
    parallel repricing can never flip one).  Two shapes are sharded:

    * a :class:`~repro.engine.plan.PartitionedOp` becomes a
      :class:`~repro.engine.plan.ParallelOp` carrying the same budget —
      the batches the budget forces anyway are simply dispatched to
      workers;
    * a bare partitionable operator gets a budget-free ``ParallelOp``
      with work-balanced batches.

    Either way the conversion happens only when
    :func:`~repro.engine.cost.parallel_cost_split` certifies that the
    parallel cost (scatter + IPC + divided work + fixed overheads)
    beats the serial cost from the same sound bounds.  Unsound or
    infinite bounds — zero-stats planning — certify nothing and leave
    the plan untouched.
    """
    from dataclasses import fields, replace

    from repro.engine.cost import parallel_cost_split

    if workers <= 1:
        return plan

    def gate(candidate: ParallelOp, original: PlanNode) -> PlanNode:
        split = parallel_cost_split(cost_model, candidate)
        if split is None:
            return original
        serial, parallel = split
        if parallel >= serial:
            return original
        note = (
            f"parallel bound {parallel:.0f} beats serial "
            f"{serial:.0f} on {candidate.workers} worker(s)"
        )
        if candidate.note:
            note = f"{candidate.note}; {note}"
        return replace(candidate, note=note)

    memo: dict[int, PlanNode] = {}

    def rebuild(node: PlanNode) -> PlanNode:
        cached = memo.get(id(node))
        if cached is not None:
            return cached
        if isinstance(node, ParallelOp):
            # Already sharded (re-applying to a planned plan).
            memo[id(node)] = node
            return node
        if isinstance(node, PartitionedOp):
            inner = rebuild_children(node.inner)
            candidate = ParallelOp(
                inner, node.partitions, node.budget, workers,
                note=node.note,
            )
            original: PlanNode = node
            if inner is not node.inner:
                original = PartitionedOp(
                    inner, node.partitions, node.budget, node.note
                )
            result = gate(candidate, original)
            memo[id(node)] = result
            return result
        rebuilt = rebuild_children(node)
        if isinstance(rebuilt, PARTITIONABLE_OPS):
            upper = in_flight_upper(cost_model, rebuilt)
            partitions = min(
                planned_partitions(upper, 1),
                max(workers * OVERSUBSCRIPTION, 1),
            )
            candidate = ParallelOp(rebuilt, partitions, None, workers)
            rebuilt = gate(candidate, rebuilt)
        memo[id(node)] = rebuilt
        return rebuilt

    def rebuild_children(node: PlanNode) -> PlanNode:
        changes = {}
        for f in fields(node):
            value = getattr(node, f.name)
            if isinstance(value, PlanNode):
                new = rebuild(value)
                if new is not value:
                    changes[f.name] = new
        return replace(node, **changes) if changes else node

    return rebuild(plan)
