"""Worst-case-optimal multiway join: generic join over attribute tries.

Binary join plans are provably quadratically worse than the AGM
fractional-edge-cover bound on cyclic queries — the triangle
``E(a,b) ⋈ F(b,c) ⋈ G(c,a)`` has output (and AGM bound) ``O(n^{3/2})``
while every binary plan materializes an ``Θ(n²)`` intermediate on
skewed inputs.  This module is the execution side of the engine's
answer (Ngo–Porat–Ré–Rudra's *generic join*, the leapfrog-triejoin
family): instead of joining relation-by-relation, join
**variable-by-variable**.

The planner hands over a :class:`~repro.engine.plan.MultiwayJoinOp`
describing the join hypergraph: ``attrs[k][c]`` names the join
variable held by column ``c`` of input ``k`` (variables are the
union-find classes of equated columns), and ``order`` fixes a global
variable elimination order.  Execution then

1. builds one **trie** per input — nested hash maps keyed by that
   input's variables sorted in the global order (cached in the
   executor's :class:`~repro.engine.executor.IndexCache`, so repeated
   queries against unchanged contents rebuild nothing);
2. recursively binds variables in order: at each depth the candidate
   values are the intersection of the current trie nodes of every
   input containing the variable, enumerated from the smallest
   candidate set and hash-probed into the others (the "min-set
   iteration" that makes the generic-join runtime bound go through);
3. reconstructs output rows from complete bindings — every column of
   every input is some variable, so a full binding *is* the
   concatenated output row, and no intermediate tuple is ever
   materialized.

The only materialized state is the inputs (tries) and the accumulated
output, whose size the AGM bound certifies — the soundness property
``tests/test_engine_wcoj.py`` asserts via the :class:`WcojRun` record
each execution leaves in :class:`~repro.engine.executor.
ExecutionStats`.

Correctness notes the implementation leans on:

* columns of one input equated *with each other* (through atom
  transitivity) share a variable; trie insertion drops rows whose
  duplicated columns disagree, which is exactly the implied
  self-filter;
* distinct rows of an input always differ on some variable (every
  column is a variable), so a complete binding matches at most one
  row per input and distinct bindings yield distinct output rows —
  the enumeration is duplicate-free without a dedup pass;
* each input's variables sorted by global order rank align its trie
  depth with the elimination order: when the recursion reaches a
  variable, every participating input's cursor is a dict keyed by
  exactly that variable's values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.data.database import Row
from repro.errors import SchemaError

__all__ = [
    "WcojRun",
    "build_trie",
    "choose_order",
    "generic_join",
    "leaf_trie_layout",
    "run_multiway",
    "variable_layout",
]


def variable_layout(
    arities: Sequence[int], atoms: Iterable[tuple[int, str, int]]
) -> tuple[tuple[int, ...], ...]:
    """Join variables from equated global columns, one row per input.

    ``atoms`` are ``(left_global, op, right_global)`` triples over the
    concatenated column space (the output of
    :func:`repro.engine.cost.flatten_join_tree`); equality atoms merge
    their columns into one variable, transitively.  Returns
    ``attrs`` with ``attrs[k][c]`` the variable id of input ``k``'s
    column ``c``; ids are dense and numbered by first occurrence in
    global column order, so the layout is deterministic.

    Non-equality atoms are rejected: the generic join binds variables
    to *equal* values only, so an order/inequality atom has no
    variable reading — callers must keep such chains binary.
    """
    offsets, total = [], 0
    for arity in arities:
        offsets.append(total)
        total += arity
    parent = list(range(total))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for gi, op, gj in atoms:
        if op != "=":
            raise SchemaError(
                "multiway join variables need pure equality atoms; "
                f"got {op!r}"
            )
        parent[find(gi)] = find(gj)
    ids: dict[int, int] = {}
    assigned = []
    for column in range(total):
        root = find(column)
        if root not in ids:
            ids[root] = len(ids)
        assigned.append(ids[root])
    return tuple(
        tuple(assigned[offsets[k] + c] for c in range(arities[k]))
        for k in range(len(arities))
    )


def choose_order(
    attrs: Sequence[Sequence[int]], cards: Sequence[float]
) -> tuple[int, ...]:
    """A deterministic variable elimination order for :func:`generic_join`.

    Any order is correct; this one intersects the most *shared*
    variables first (they prune hardest), breaking ties toward the
    variable whose smallest containing input is smallest (cheap
    candidate sets), then by variable id.  Purely a heuristic — the
    worst-case bound holds for every order.
    """
    containing: dict[int, int] = {}
    smallest: dict[int, float] = {}
    for k, row in enumerate(attrs):
        for variable in set(row):
            containing[variable] = containing.get(variable, 0) + 1
            smallest[variable] = min(
                smallest.get(variable, math.inf), cards[k]
            )
    return tuple(
        sorted(
            containing,
            key=lambda v: (-containing[v], smallest[v], v),
        )
    )


def leaf_trie_layout(
    attrs_k: Sequence[int], order: Sequence[int]
) -> tuple[tuple[int, ...], tuple[tuple[int, ...], ...]]:
    """One input's trie plan: ``(variables, columns_by_variable)``.

    ``variables`` is the input's distinct variable ids sorted by their
    rank in the global ``order`` (the trie's level sequence);
    ``columns_by_variable`` aligns with it and lists every 0-based
    column of the input holding that variable (several when atoms
    equate columns of the same input — insertion enforces they agree).
    """
    rank = {variable: i for i, variable in enumerate(order)}
    variables = tuple(sorted(set(attrs_k), key=lambda v: rank[v]))
    columns = tuple(
        tuple(c for c, v in enumerate(attrs_k) if v == variable)
        for variable in variables
    )
    return variables, columns


def build_trie(
    rows: Iterable[Row], columns_by_variable: Sequence[Sequence[int]]
) -> tuple[dict, int]:
    """Nested hash maps over ``rows``, one level per variable.

    Level ``d`` is keyed by the value of ``columns_by_variable[d]``
    (all listed columns must agree, else the row can never join and is
    dropped); the last level maps values to ``True``.  Returns the
    trie and the number of rows inserted — the figure the
    :class:`~repro.engine.executor.IndexCache` row budget counts.
    """
    root: dict = {}
    inserted = 0
    if not columns_by_variable:
        return root, 0
    for row in rows:
        key = []
        for columns in columns_by_variable:
            value = row[columns[0]]
            if any(row[c] != value for c in columns[1:]):
                key = None
                break
            key.append(value)
        if key is None:
            continue
        node = root
        for value in key[:-1]:
            node = node.setdefault(value, {})
        node[key[-1]] = True
        inserted += 1
    return root, inserted


@dataclass(frozen=True)
class WcojRun:
    """What one :class:`MultiwayJoinOp` execution actually did.

    The record the soundness property tests read: ``output_rows`` —
    the only rows the operator materializes beyond its inputs — must
    stay within ``agm``, the fractional-edge-cover bound the planner
    certified.  ``probes``/``candidates`` count intersection work
    (hash probes into non-pivot tries; values enumerated from pivot
    tries), the generic-join analogue of build/probe counters.
    """

    variables: int
    leaves: int
    agm: float
    output_rows: int
    candidates: int
    probes: int

    def render(self) -> str:
        return (
            f"[vars={self.variables} inputs={self.leaves} "
            f"agm={self.agm:g} rows={self.output_rows} "
            f"candidates={self.candidates} probes={self.probes}]"
        )


def generic_join(
    tries: Sequence[dict],
    leaf_variables: Sequence[frozenset[int]],
    order: Sequence[int],
    counters: dict[str, int] | None = None,
) -> list[tuple]:
    """All complete bindings supported by every trie (NPRR generic join).

    ``tries[k]`` must be keyed by ``leaf_variables[k]`` sorted in
    ``order`` (see :func:`leaf_trie_layout`).  Returns bindings as
    tuples indexed by variable id.  At each depth the pivot is the
    participating input with the fewest candidates; its values are
    enumerated and hash-probed into the others, so the work per level
    is proportional to the smallest candidate set — the property the
    worst-case analysis needs.
    """
    depth_count = len(order)
    if counters is None:
        counters = {}
    counters.setdefault("candidates", 0)
    counters.setdefault("probes", 0)
    participants = [
        tuple(
            k
            for k, variables in enumerate(leaf_variables)
            if order[d] in variables
        )
        for d in range(depth_count)
    ]
    if any(not p for p in participants):
        raise SchemaError(
            "generic join: a variable in the order occurs in no input"
        )
    cursors = list(tries)
    width = max(order, default=-1) + 1
    binding = [None] * width
    out: list[tuple] = []

    def recurse(d: int) -> None:
        if d == depth_count:
            out.append(tuple(binding))
            return
        parts = participants[d]
        pivot = min(parts, key=lambda k: len(cursors[k]))
        base = cursors[pivot]
        others = tuple(k for k in parts if k != pivot)
        variable = order[d]
        counters["candidates"] += len(base)
        for value, descended in base.items():
            advanced = [(pivot, descended)]
            supported = True
            for k in others:
                counters["probes"] += 1
                nxt = cursors[k].get(value)
                if nxt is None:
                    supported = False
                    break
                advanced.append((k, nxt))
            if not supported:
                continue
            saved = tuple((k, cursors[k]) for k, __ in advanced)
            for k, nxt in advanced:
                cursors[k] = nxt
            binding[variable] = value
            recurse(d + 1)
            for k, previous in saved:
                cursors[k] = previous

    recurse(0)
    return out


def run_multiway(executor, node) -> list[Row]:
    """Execute a :class:`~repro.engine.plan.MultiwayJoinOp`.

    Inputs come through the executor's usual per-node memo; the
    per-input tries go through its :class:`~repro.engine.executor.
    IndexCache` (keyed by the input's *logical* expression plus the
    trie layout, so repeated runs against unchanged contents reuse the
    builds and a version-token move invalidates them with everything
    else).  Leaves a :class:`WcojRun` in ``executor.stats.wcoj_runs``.
    """
    inputs = [executor._rows(child) for child in node.relations]
    tries: list[dict] = []
    leaf_variables: list[frozenset[int]] = []
    for child, rows, attrs_k in zip(node.relations, inputs, node.attrs):
        variables, columns = leaf_trie_layout(attrs_k, node.order)
        tries.append(
            executor.indexes.trie_for(child.logical, rows, columns)
        )
        leaf_variables.append(frozenset(variables))
    counters: dict[str, int] = {}
    bindings = generic_join(tries, leaf_variables, node.order, counters)
    out = [
        tuple(binding[v] for attrs_k in node.attrs for v in attrs_k)
        for binding in bindings
    ]
    executor.stats.wcoj_runs[node] = WcojRun(
        variables=len(node.order),
        leaves=len(node.relations),
        agm=node.agm,
        output_rows=len(out),
        candidates=counters["candidates"],
        probes=counters["probes"],
    )
    return out
