"""Cardinality and cost estimation over physical plans.

:class:`CostModel` walks a plan bottom-up and assigns every operator an
:class:`Estimate` with two cardinality figures and one work figure:

* ``rows`` — the point estimate, built from textbook selectivities
  (equality ``1/max(d_i, d_j)`` over distinct counts, ``1/3`` for
  order comparisons) and used for cost comparisons;
* ``upper`` — a **sound upper bound** on the actual output
  cardinality.  When the model has exact statistics
  (:class:`~repro.engine.stats.StatsCatalog` profiles frozensets, so
  its counts are exact) every composition rule preserves soundness:
  projections/filters/semijoins cannot grow their input, unions add,
  joins multiply — tightened by most-common-value frequency bounds and
  by an **AGM-style bound** (Atserias–Grohe–Marx) on equi-join chains
  over base relations, computed from a feasible fractional edge cover
  of the join's hypergraph.  ``tests/test_engine_cost.py`` property-
  tests the soundness claim on random databases;
* ``cost`` — cumulative estimated row operations (builds, probes,
  emitted rows), the quantity the planner minimizes.

Each estimate also carries per-column **sound upper bounds on distinct
counts** (``distinct``), which is what lets equality selectivities
propagate through the tree, and a ``sound`` flag: without a catalog the
model falls back to fixed default assumptions (``DEFAULT_ROWS`` per
relation) that still rank plans but certify nothing — ``upper`` is then
infinite and ``sound`` is False.  The planner treats that zero-stats
mode as "keep the structural rules".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.engine.plan import (
    DifferenceOp,
    DivisionOp,
    FilterOp,
    GroupByOp,
    HashJoinOp,
    HashSemijoinOp,
    MultiwayJoinOp,
    NestedLoopJoinOp,
    NestedLoopSemijoinOp,
    ParallelOp,
    PartitionedOp,
    PlanNode,
    ProjectOp,
    ScanOp,
    SortOp,
    TagOp,
    UnionOp,
)
from repro.engine.stats import StatsCatalog
from repro.errors import SchemaError

#: Selectivity assumed for ``<`` / ``>`` comparisons (System R's third).
INEQUALITY_SELECTIVITY = 1.0 / 3.0

#: Zero-stats default assumptions: every relation is assumed to hold
#: this many rows with ``sqrt(rows)`` distinct values per column.
DEFAULT_ROWS = 1000.0

#: Join subtrees with at most this many base-relation leaves get the
#: LP-solved fractional-edge-cover AGM bound; longer chains fall back
#: to the (still sound) pairwise product bound.  The cap bounds only
#: the flattening/solve work per node — the LP itself is polynomial —
#: and sits above the planner's ``REORDER_MAX_LEAVES``.
AGM_MAX_EDGES = 12

#: Per-row surcharge for crossing the process boundary as pickled
#: fragments (a row out to a worker, a result row back).  Calibrated
#: by ``tools/calibrate_ipc.py``: a pickle dumps+loads round trip
#: measures 4.7–5.0× the unit row touch (a hash-semijoin build/probe
#: step) on the reference machine; committed as the rounded-up fit —
#: overpricing transport only delays parallelism until the compute
#: genuinely dominates, while underpricing would certify dispatches
#: that lose (``BENCH_parallel.json`` records the fit next to this
#: constant on every benchmark run).
PARALLEL_IPC_ROW_COST = 5.0

#: Per-row surcharge when the backend is *attached* (shm/mmap): the
#: scatter writes each distinct fragment once into a shared columnar
#: buffer and ships only descriptors, so the parent's serial critical
#: path is the columnar encode — calibrated at ~1.6× the unit row
#: touch (see ``tools/calibrate_ipc.py``), committed rounded up.  The
#: worker-side decode overlaps the divided kernel work, and replicated
#: sides (a θ-semijoin's right side, a division's divisor) are encoded
#: once instead of re-pickled per task.
PARALLEL_ATTACHED_ROW_COST = 2.0

#: Fixed dispatch/bookkeeping cost per batch submitted to the pool.
PARALLEL_BATCH_COST = 64.0

#: Fixed cost of engaging the worker pool at all (queue wake-ups,
#: result plumbing; pool *creation* is amortized across queries).
PARALLEL_STARTUP_COST = 512.0

_INF = math.inf


@dataclass(frozen=True)
class Estimate:
    """One operator's estimated output and cost (see module docstring)."""

    rows: float
    upper: float
    cost: float
    distinct: tuple[float, ...]
    sound: bool
    #: The uncorrected point estimate when feedback adjusted ``rows``
    #: (None otherwise).  The executor feeds the ledger with *raw*
    #: estimates so correction factors converge to the true ratio
    #: instead of compounding their own corrections.
    raw_rows: float | None = None

    def __post_init__(self) -> None:
        # Keep the point estimate inside the certified bound.
        if self.rows > self.upper:
            object.__setattr__(self, "rows", self.upper)

    def render(self) -> str:
        """Compact text for EXPLAIN annotations (no ``' :: '`` inside)."""
        return (
            f"~rows={_fmt(self.rows)} ub={_fmt(self.upper)} "
            f"cost={_fmt(self.cost)}"
        )


def _fmt(x: float) -> str:
    if not math.isfinite(x):  # ∞ (nothing certified) — or a NaN bug
        return "?"
    if x == int(x) and abs(x) < 1e15:
        return str(int(x))
    return f"{x:.3g}"


def _mul(a: float, b: float) -> float:
    """``a·b`` with ``0·∞ = 0``: an empty side empties the product.

    IEEE would make it NaN, which then poisons every bound above it.
    """
    if a == 0.0 or b == 0.0:
        return 0.0
    return a * b


def _cap_distinct(distinct: tuple[float, ...], upper: float) -> tuple[float, ...]:
    return tuple(min(d, upper) for d in distinct)


class CostModel:
    """Estimate cardinalities and costs for plan nodes.

    One model per (catalog, moment): estimates are memoized per node,
    so a planner comparing many candidate sub-plans shares the work for
    common subtrees.  The catalog's statistics must describe the
    database the plan will run against, or the ``sound`` flags lie.
    """

    def __init__(
        self,
        catalog: StatsCatalog | None = None,
        backend: str = "memory",
        feedback=None,
    ) -> None:
        self.catalog = catalog
        #: The storage-backend kind (:data:`repro.storage.backend.
        #: BACKEND_KINDS`) execution will run against — it decides the
        #: per-row transport price in :func:`parallel_cost_split`
        #: (attached backends ship descriptors, not pickles).
        self.backend = backend
        #: Optional :class:`~repro.engine.stats.FeedbackLedger` whose
        #: correction factors adjust *point* estimates (never the
        #: sound upper bounds — ``Estimate.__post_init__`` clamps the
        #: corrected rows back under ``upper``, so soundness survives
        #: any correction).  None keeps the model purely analytic —
        #: the executor attaches the ledger only when planning with a
        #: ``replan_threshold``, so default planning is byte-identical
        #: to the pre-feedback behaviour.
        self.feedback = feedback
        self._memo: dict[PlanNode, Estimate] = {}

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def estimate(self, node: PlanNode) -> Estimate:
        cached = self._memo.get(node)
        if cached is not None:
            return cached
        computed = self._estimate(node)
        if self.feedback is not None and len(self.feedback):
            computed = self._corrected(node, computed)
        self._memo[node] = computed
        return computed

    def _corrected(self, node: PlanNode, estimate: Estimate) -> Estimate:
        """Apply the ledger's correction factor to one point estimate.

        Partition/parallel wrappers are skipped: their rows come from
        the inner operator's (already corrected) estimate, and
        :func:`~repro.engine.stats.feedback_key` would unwrap to the
        same key — correcting here again would compound the factor.
        The cost moves by the row delta (each estimated output row is
        one unit of emit work in every operator formula), floored at
        the children's cumulative cost so a strong downward correction
        cannot price an operator below the work of producing its
        inputs.
        """
        from dataclasses import replace

        from repro.engine.stats import feedback_key

        if isinstance(node, (PartitionedOp, ParallelOp)):
            return estimate
        key = feedback_key(node)
        if key is None:
            return estimate
        factor = self.feedback.factor(key)
        if factor is None or factor == 1.0:
            return estimate
        corrected = min(estimate.rows * factor, estimate.upper)
        floor = sum(
            self.estimate(child).cost for child in node.children()
        )
        cost = max(estimate.cost + (corrected - estimate.rows), floor)
        return replace(
            estimate, rows=corrected, cost=cost, raw_rows=estimate.rows
        )

    def estimates(self, plan: PlanNode) -> dict[PlanNode, Estimate]:
        """Estimates for every node of ``plan`` (post-order keys)."""
        return {node: self.estimate(node) for node in plan.nodes()}

    def __len__(self) -> int:
        """Memoized node count — callers recycle models grown too big."""
        return len(self._memo)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _estimate(self, node: PlanNode) -> Estimate:
        if isinstance(node, ScanOp):
            return self._scan(node)
        if isinstance(node, UnionOp):
            return self._union(node)
        if isinstance(node, DifferenceOp):
            return self._difference(node)
        if isinstance(node, ProjectOp):
            return self._project(node)
        if isinstance(node, FilterOp):
            return self._filter(node)
        if isinstance(node, TagOp):
            return self._tag(node)
        if isinstance(node, (HashJoinOp, NestedLoopJoinOp)):
            return self._join(node)
        if isinstance(node, MultiwayJoinOp):
            return self._multiway(node)
        if isinstance(node, (HashSemijoinOp, NestedLoopSemijoinOp)):
            return self._semijoin(node)
        if isinstance(node, DivisionOp):
            return self._division(node)
        if isinstance(node, PartitionedOp):
            return self._partitioned(node)
        if isinstance(node, ParallelOp):
            return self._parallel(node)
        if isinstance(node, GroupByOp):
            return self._group_by(node)
        if isinstance(node, SortOp):
            child = self.estimate(node.child)
            return Estimate(
                child.rows,
                child.upper,
                child.cost + child.rows,
                child.distinct,
                child.sound,
            )
        raise SchemaError(
            f"cost model: unknown plan node {type(node).__name__}"
        )

    # ------------------------------------------------------------------
    # Leaves
    # ------------------------------------------------------------------

    def _scan(self, node: ScanOp) -> Estimate:
        if self.catalog is None:
            distinct = (math.sqrt(DEFAULT_ROWS),) * node.arity
            return Estimate(DEFAULT_ROWS, _INF, DEFAULT_ROWS, distinct, False)
        stats = self.catalog.relation(node.expr.name)
        rows = float(stats.rows)
        distinct = tuple(float(c.distinct) for c in stats.columns)
        if len(distinct) != node.arity:
            # Plan/schema arity mismatch: the executor will raise a
            # clean ArityError at run time; keep estimation total so
            # planning never crashes first.
            distinct = (distinct + (rows,) * node.arity)[: node.arity]
        return Estimate(rows, rows, rows, distinct, True)

    # ------------------------------------------------------------------
    # Unary operators
    # ------------------------------------------------------------------

    def _union(self, node: UnionOp) -> Estimate:
        left, right = self.estimate(node.left), self.estimate(node.right)
        upper = left.upper + right.upper
        distinct = _cap_distinct(
            tuple(l + r for l, r in zip(left.distinct, right.distinct)),
            upper,
        )
        return Estimate(
            left.rows + right.rows,
            upper,
            left.cost + right.cost + left.rows + right.rows,
            distinct,
            left.sound and right.sound,
        )

    def _difference(self, node: DifferenceOp) -> Estimate:
        left, right = self.estimate(node.left), self.estimate(node.right)
        return Estimate(
            left.rows,
            left.upper,
            left.cost + right.cost + left.rows + right.rows,
            left.distinct,
            left.sound and right.sound,
        )

    def _project(self, node: ProjectOp) -> Estimate:
        child = self.estimate(node.child)
        # Output rows are determined by the values at the *distinct*
        # source positions, so the product of their distinct counts
        # bounds the output (sound: each factor is a sound bound).
        combos = 1.0
        for position in sorted(set(node.positions)):
            combos *= max(child.distinct[position - 1], 1.0)
        upper = min(child.upper, combos) if child.sound else child.upper
        distinct = _cap_distinct(
            tuple(child.distinct[p - 1] for p in node.positions), upper
        )
        return Estimate(
            min(child.rows, combos),
            upper,
            child.cost + child.rows,
            distinct,
            child.sound,
        )

    def _filter(self, node: FilterOp) -> Estimate:
        child = self.estimate(node.child)
        selectivity, upper = 1.0, child.upper
        for op, i, j in node.predicates:
            if i == j:
                if op == "<":  # σ_{i<i} is unsatisfiable
                    selectivity, upper = 0.0, 0.0
                continue  # σ_{i=i} keeps everything
            if op == "=":
                d = max(child.distinct[i - 1], child.distinct[j - 1], 1.0)
                selectivity /= d
            else:
                selectivity *= INEQUALITY_SELECTIVITY
        distinct = _cap_distinct(child.distinct, upper)
        return Estimate(
            child.rows * selectivity,
            upper,
            child.cost + child.rows,
            distinct,
            child.sound,
        )

    def _tag(self, node: TagOp) -> Estimate:
        child = self.estimate(node.child)
        return Estimate(
            child.rows,
            child.upper,
            child.cost + child.rows,
            child.distinct + (1.0,),
            child.sound,
        )

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------

    def _join_selectivity(self, cond, left: Estimate, right: Estimate) -> float:
        selectivity = 1.0
        for atom in cond:
            if atom.op == "=":
                d = max(
                    left.distinct[atom.i - 1],
                    right.distinct[atom.j - 1],
                    1.0,
                )
                selectivity /= d
            elif atom.op in ("<", ">"):
                selectivity *= INEQUALITY_SELECTIVITY
            # "!=" filters almost nothing: selectivity 1 is the bound.
        return selectivity

    def _join(self, node: HashJoinOp | NestedLoopJoinOp) -> Estimate:
        left, right = self.estimate(node.left), self.estimate(node.right)
        sound = left.sound and right.sound
        upper = _mul(left.upper, right.upper)
        if sound:
            # MCV refinement: joining into a base relation emits at most
            # max_freq matches per probe (per equality atom; exact
            # sketch counts make this a theorem, not a guess) — and for
            # scan⋈scan the per-value sketches give the tighter
            # Σ f_L(v)·f_R(v) style bound.
            left_stats = (
                self.catalog.relation(node.left.expr.name)
                if isinstance(node.left, ScanOp)
                else None
            )
            right_stats = (
                self.catalog.relation(node.right.expr.name)
                if isinstance(node.right, ScanOp)
                else None
            )
            for atom in node.cond.by_op("="):
                if right_stats is not None and atom.j <= right_stats.arity:
                    upper = min(
                        upper, left.upper * right_stats.max_freq(atom.j)
                    )
                if left_stats is not None and atom.i <= left_stats.arity:
                    upper = min(
                        upper, right.upper * left_stats.max_freq(atom.i)
                    )
                if (
                    left_stats is not None
                    and right_stats is not None
                    and atom.i <= left_stats.arity
                    and atom.j <= right_stats.arity
                ):
                    upper = min(
                        upper,
                        _sketch_join_bound(left_stats, atom.i, right_stats, atom.j),
                        _sketch_join_bound(right_stats, atom.j, left_stats, atom.i),
                    )
            agm = self._agm_bound(node)
            if agm is not None:
                upper = min(upper, agm)
        rows = left.rows * right.rows * self._join_selectivity(
            node.cond, left, right
        )
        distinct = _cap_distinct(left.distinct + right.distinct, upper)
        out = min(rows, upper)
        if isinstance(node, HashJoinOp):
            cost = left.cost + right.cost + right.rows + left.rows + out
        else:
            cost = left.cost + right.cost + left.rows * right.rows + out
        return Estimate(rows, upper, cost, distinct, sound)

    def _semijoin(
        self, node: HashSemijoinOp | NestedLoopSemijoinOp
    ) -> Estimate:
        left, right = self.estimate(node.left), self.estimate(node.right)
        selectivity = 1.0
        for atom in node.cond:
            if atom.op == "=":
                matched = min(
                    left.distinct[atom.i - 1], right.distinct[atom.j - 1]
                )
                selectivity *= min(
                    1.0, matched / max(left.distinct[atom.i - 1], 1.0)
                )
            elif atom.op in ("<", ">"):
                selectivity *= 1.0 - INEQUALITY_SELECTIVITY
        if right.rows == 0:
            selectivity = 0.0
        if isinstance(node, HashSemijoinOp):
            cost = left.cost + right.cost + right.rows + left.rows
        else:
            cost = left.cost + right.cost + left.rows * right.rows
        distinct = _cap_distinct(left.distinct, left.upper)
        return Estimate(
            left.rows * selectivity,
            left.upper,
            cost,
            distinct,
            left.sound and right.sound,
        )

    # ------------------------------------------------------------------
    # Division / grouping
    # ------------------------------------------------------------------

    def _division(self, node: DivisionOp) -> Estimate:
        dividend = self.estimate(node.dividend)
        divisor = self.estimate(node.divisor)
        keys = max(dividend.distinct[0], 0.0)
        upper = min(keys, dividend.upper)
        if divisor.rows <= 0:
            rows = keys if node.empty_divisor == "all" else 0.0
        else:
            # Coverage heuristic: a key relates to rows/keys values on
            # average; it passes when that fan-out reaches the divisor.
            fanout = dividend.rows / keys if keys else 0.0
            rows = keys * min(1.0, fanout / divisor.rows)
        base = dividend.cost + divisor.cost
        if node.method == "sort_merge":
            cost = base + dividend.rows * math.log2(dividend.rows + 2)
        elif node.method == "nested_loop":
            cost = base + keys * divisor.rows + dividend.rows
        else:  # hash / counting are single-pass
            cost = base + dividend.rows + divisor.rows
        return Estimate(
            rows,
            upper,
            cost,
            (upper,),
            dividend.sound and divisor.sound,
        )

    def _partitioned(self, node: PartitionedOp) -> Estimate:
        """Batched execution: same output, plus the scatter pass.

        Partitioning never changes what is computed — rows, the sound
        upper bound, and distinct counts are the inner operator's.  The
        extra cost is one grouping pass over each input (the scatter)
        plus per-batch bookkeeping.  The wrapped plan therefore always
        prices ≥ the unwrapped one: the planner partitions to honour
        the rows-in-flight *budget*, not because it is cheaper — the
        cost-based part of the decision is *which* operators must pay
        the scatter at all (only those whose in-flight bound exceeds
        the budget; see :func:`repro.engine.partition.in_flight_upper`).
        """
        inner = self.estimate(node.inner)
        scatter = sum(
            self.estimate(child).rows for child in node.inner.children()
        )
        return Estimate(
            inner.rows,
            inner.upper,
            inner.cost + scatter + node.partitions,
            inner.distinct,
            inner.sound,
        )

    def _parallel(self, node: ParallelOp) -> Estimate:
        """Sharded execution: same output, repriced for the pool.

        Like :meth:`_partitioned`, parallelism never changes what is
        computed — rows, the sound upper bound, and distinct counts are
        the inner operator's.  The cost is the certified parallel cost
        from :func:`parallel_cost_split` when the bounds allow one;
        when they do not (a hand-built node over unsound estimates)
        the partitioned-style scatter surcharge is used — the planner
        itself never emits an uncertified :class:`ParallelOp`.
        """
        inner = self.estimate(node.inner)
        split = parallel_cost_split(self, node)
        if split is None:
            scatter = sum(
                self.estimate(child).rows
                for child in node.inner.children()
            )
            cost = inner.cost + scatter + node.partitions
        else:
            cost = split[1]
        return Estimate(
            inner.rows, inner.upper, cost, inner.distinct, inner.sound
        )

    def _group_by(self, node: GroupByOp) -> Estimate:
        child = self.estimate(node.child)
        positions = node.expr.group_positions
        if not positions:
            # A single group — and γ_count emits its one row even on
            # empty input (the SQL convention), so 1 is the bound.
            upper = 1.0 if child.sound else _INF
            rows = 1.0
        else:
            groups = 1.0
            for position in sorted(set(positions)):
                groups *= max(child.distinct[position - 1], 1.0)
            upper = min(child.upper, groups)
            rows = min(child.rows, groups)
        distinct = tuple(child.distinct[p - 1] for p in positions) + (
            upper,
        ) * len(node.expr.aggregates)
        return Estimate(
            rows,
            upper,
            child.cost + child.rows,
            _cap_distinct(distinct, upper),
            child.sound,
        )

    # ------------------------------------------------------------------
    # AGM bound for equi-join chains over base relations
    # ------------------------------------------------------------------

    def _agm_bound(self, node: PlanNode) -> float | None:
        """AGM-style bound for a join subtree, or None when inapplicable.

        Flattens the subtree of ``HashJoinOp``/``NestedLoopJoinOp``
        nodes into base-relation leaves (``ScanOp`` only — the leaf
        cardinalities must be exact) plus the equality atoms between
        them, builds the join hypergraph (variables = equivalence
        classes of equated columns, hyperedges = leaves), and returns
        ``Π |R_e|^{x_e}`` for the optimal fractional edge cover ``x``
        from :func:`fractional_edge_cover` — solved exactly for
        arbitrary (including cyclic) hypergraphs, where the historical
        implementation enumerated half-integral covers and silently
        kept the product bound on anything the enumeration missed.
        Non-equality atoms only filter the output, so ignoring them
        keeps the bound sound.
        """
        if self.catalog is None:
            return None
        flat = _flatten_join(node)
        if flat is None:
            return None
        leaves, atoms = flat
        if len(leaves) < 2 or len(leaves) > AGM_MAX_EDGES:
            return None
        from repro.engine.wcoj import variable_layout

        attrs = variable_layout(
            [leaf.arity for leaf in leaves],
            [atom for atom in atoms if atom[1] == "="],
        )
        edges = [frozenset(row) for row in attrs]
        if not all(edges):  # an arity-0 leaf: no hyperedge to weight
            return None
        cards = [
            float(self.catalog.relation(leaf.expr.name).rows)
            for leaf in leaves
        ]
        bound, __ = fractional_edge_cover(edges, cards)
        return bound

    # ------------------------------------------------------------------
    # Multiway (worst-case-optimal) join
    # ------------------------------------------------------------------

    def _multiway(self, node: MultiwayJoinOp) -> Estimate:
        """Estimate for a generic-join operator (:mod:`repro.engine.wcoj`).

        The sound upper bound is the AGM bound *recomputed from the
        current statistics* (never the planner-stamped ``node.agm``,
        which may describe an older version token), intersected with
        the input-upper product.  The point estimate mirrors the
        binary chain's textbook rule: the input product discounted by
        one equality selectivity ``1/max(d)`` per extra occurrence of
        each join variable.  Cost is input production plus one trie
        build per input plus the emitted rows — the generic join does
        no other materialization.
        """
        children = [self.estimate(child) for child in node.relations]
        sound = all(child.sound for child in children)
        upper = 1.0
        for child in children:
            upper = _mul(upper, child.upper)
        if sound:
            agm = self._multiway_agm(node)
            if agm is not None:
                upper = min(upper, agm)
        flat_distinct = [d for child in children for d in child.distinct]
        occurrences: dict[int, list[int]] = {}
        position = 0
        for attrs_k in node.attrs:
            for variable in attrs_k:
                occurrences.setdefault(variable, []).append(position)
                position += 1
        rows = 1.0
        for child in children:
            rows *= child.rows
        for positions in occurrences.values():
            if len(positions) > 1:
                d = max(max(flat_distinct[p] for p in positions), 1.0)
                rows /= d ** (len(positions) - 1)
        inputs = sum(child.rows for child in children)
        out = min(rows, upper)
        cost = sum(child.cost for child in children) + inputs + out
        distinct = _cap_distinct(tuple(flat_distinct), upper)
        return Estimate(rows, upper, cost, distinct, sound)

    def _multiway_agm(self, node: MultiwayJoinOp) -> float | None:
        """The node's AGM bound against *current* statistics, or None.

        Needs exact input cardinalities, so only all-``ScanOp`` inputs
        qualify (exactly the shape the planner collapses).
        """
        if self.catalog is None:
            return None
        if not all(
            isinstance(child, ScanOp) for child in node.relations
        ):
            return None
        edges = [frozenset(row) for row in node.attrs]
        if not all(edges):
            return None
        cards = [
            float(self.catalog.relation(child.expr.name).rows)
            for child in node.relations
        ]
        bound, __ = fractional_edge_cover(edges, cards)
        return bound


def _sketch_join_bound(probe, i: int, build, j: int) -> float:
    """Sound bound on ``Σ_v f_probe(v)·f_build(v)`` from MCV sketches.

    Each probe-side row with value ``v`` matches exactly ``f_build(v)``
    build-side rows on one equality atom.  For probe values the sketch
    retained, ``f_build`` is read exactly (or, if the build sketch
    dropped the value, bounded by the build sketch's smallest retained
    count — every unretained value is at most that frequent — or by 0
    when the sketch is complete).  The probe rows the sketch did not
    retain are bounded by ``max_freq`` matches each, so the result
    never exceeds — and with complete sketches equals — the plain
    ``rows·max_freq`` bound.
    """
    probe_col, build_col = probe.columns[i - 1], build.columns[j - 1]
    if build_col.distinct <= len(build_col.mcv):
        tail = 0  # complete sketch: unretained values do not occur
    elif build_col.mcv:
        tail = build_col.mcv[-1][1]
    else:
        tail = 0
    total, covered = 0.0, 0
    for value, count in probe_col.mcv:
        matched = build_col.frequency(value)
        total += count * (matched if matched is not None else tail)
        covered += count
    return total + (probe.rows - covered) * build_col.max_freq


class NotFlattenable(Exception):
    """A leaf failed ``leaf_ok`` during :func:`flatten_join_tree`."""


def flatten_join_tree(root, join_types: tuple, leaf_ok=None):
    """Flatten a binary-join tree into leaves, spans and global atoms.

    The one flattener behind both the planner's join reordering (over
    logical ``Join`` nodes) and the AGM bound (over physical join
    operators) — the subtle 1-based-to-global atom arithmetic lives
    only here.  Works on any nodes with ``left``/``right``/``cond``
    and an ``arity``; anything not in ``join_types`` is a leaf, vetted
    by ``leaf_ok`` (raising :class:`NotFlattenable` on refusal).

    Returns ``(leaves, spans, atoms)``: ``spans[k]`` is the ``(start,
    arity)`` global column range of leaf ``k`` (columns concatenated
    in written order) and each atom is ``(left_global, op,
    right_global)`` with 0-based global indexes.  Every atom relates
    columns of two distinct leaves, because a join condition spans its
    two operand subtrees.
    """
    leaves: list = []
    spans: list[tuple[int, int]] = []
    atoms: list[tuple[int, str, int]] = []

    def walk(node, offset: int) -> int:
        if isinstance(node, join_types):
            middle = walk(node.left, offset)
            end = walk(node.right, middle)
            for atom in node.cond:
                atoms.append(
                    (offset + atom.i - 1, atom.op, middle + atom.j - 1)
                )
            return end
        if leaf_ok is not None and not leaf_ok(node):
            raise NotFlattenable
        leaves.append(node)
        spans.append((offset, node.arity))
        return offset + node.arity

    walk(root, 0)
    return leaves, spans, atoms


def _flatten_join(
    node: PlanNode,
) -> tuple[list[ScanOp], list[tuple[int, str, int]]] | None:
    """Flatten a physical join subtree into scan leaves + atoms.

    Returns None unless every leaf under the join operators is a
    ``ScanOp`` (derived inputs have no exact cardinality, so no AGM).
    """
    if not isinstance(node, (HashJoinOp, NestedLoopJoinOp)):
        return None
    try:
        leaves, __, atoms = flatten_join_tree(
            node,
            (HashJoinOp, NestedLoopJoinOp),
            leaf_ok=lambda leaf: isinstance(leaf, ScanOp),
        )
    except NotFlattenable:
        return None
    return leaves, atoms


def fractional_edge_cover(
    edges, cards
) -> tuple[float, tuple[float, ...]]:
    """Optimal fractional edge cover of a join hypergraph (AGM bound).

    ``edges[k]`` is the set of join variables relation ``k`` covers
    and ``cards[k]`` its exact cardinality.  Returns ``(bound,
    weights)`` where ``weights`` is a **feasible** fractional edge
    cover ``x`` (every variable covered by total weight ≥ 1, ``x ≥
    0``) minimizing the AGM bound ``Π cards[k]^{x_k}`` — solved as a
    linear program in the exponents (minimize ``Σ x_k·log cards[k]``)
    for **arbitrary** hypergraphs: cyclic shapes get their true
    optimum (the triangle's all-½ cover and its ``n^{3/2}`` bound,
    the 4-cycle's ``n²``) instead of the silent product-bound
    fallback the pre-LP implementation applied to anything its
    half-integral enumeration missed.  Malformed hypergraphs raise
    :class:`~repro.errors.SchemaError`.

    Soundness never rests on LP optimality: the returned cover is
    explicitly checked (and numerically repaired) for feasibility,
    and the all-ones cover — the plain cardinality product — is the
    comparison floor, so ``Π cards^x`` is a sound output bound even
    if the pivoting were wrong.  Tightness *is* property-tested
    against exhaustive half-integral enumeration in
    ``tests/test_engine_cost.py``.
    """
    edge_sets = [frozenset(edge) for edge in edges]
    sizes = [float(card) for card in cards]
    if not edge_sets:
        raise SchemaError(
            "fractional edge cover: the hypergraph has no edges"
        )
    if len(edge_sets) != len(sizes):
        raise SchemaError(
            "fractional edge cover: need one cardinality per edge; "
            f"got {len(sizes)} for {len(edge_sets)} edges"
        )
    for edge in edge_sets:
        if not edge:
            raise SchemaError(
                "fractional edge cover: empty hyperedge (an arity-0 "
                "relation covers no variable)"
            )
    for size in sizes:
        if math.isnan(size) or size < 0.0 or math.isinf(size):
            raise SchemaError(
                "fractional edge cover: cardinalities must be finite "
                f"and >= 0, got {size}"
            )
    count = len(edge_sets)
    if any(size == 0.0 for size in sizes):
        # An empty relation empties the join: any feasible cover
        # putting weight on it prices the bound at 0.
        return 0.0, (1.0,) * count
    variables = sorted(set().union(*edge_sets))
    weights = [math.log(max(size, 1.0)) for size in sizes]
    candidates: list[tuple[float, ...]] = [(1.0,) * count]
    solved = _edge_cover_lp(edge_sets, variables, weights)
    if solved is not None:
        candidates.append(solved)
    best_bound, best_cover = _INF, candidates[0]
    for cover in candidates:
        cover = tuple(max(weight, 0.0) for weight in cover)
        coverage = min(
            sum(w for w, e in zip(cover, edge_sets) if v in e)
            for v in variables
        )
        if coverage <= 0.0:
            continue  # degenerate LP output: not repairable, skip
        if coverage < 1.0:  # numerical shortfall: scale up (stays sound)
            cover = tuple(w / coverage for w in cover)
        bound = math.prod(
            size**w for size, w in zip(sizes, cover) if w > 0.0
        )
        if bound < best_bound:
            best_bound, best_cover = bound, cover
    return best_bound, best_cover


def _edge_cover_lp(edge_sets, variables, weights):
    """Solve ``min w·x`` s.t. ``Ax ≥ 1, x ≥ 0`` (A = var×edge incidence).

    Plain dense simplex on the **dual** — maximize ``Σ y_v`` subject
    to ``Σ_{v∈e} y_v ≤ w_e``, ``y ≥ 0`` — which starts feasible at
    ``y = 0`` (``w ≥ 0``), so no two-phase setup is needed; Bland's
    rule (lowest-index entering column, lowest-index leaving basis
    variable on ratio ties) guarantees termination.  At the optimum
    the primal cover is read off the objective row under the slack
    columns (strong duality).  Returns None if the pivot loop hits
    its iteration cap — callers then keep the all-ones cover, which
    costs tightness, not soundness.
    """
    n, m = len(variables), len(edge_sets)
    index = {variable: i for i, variable in enumerate(variables)}
    rows: list[list[float]] = []
    for e, (edge, weight) in enumerate(zip(edge_sets, weights)):
        row = [0.0] * (n + m + 1)
        for variable in edge:
            row[index[variable]] = 1.0
        row[n + e] = 1.0
        row[-1] = weight
        rows.append(row)
    objective = [-1.0] * n + [0.0] * (m + 1)
    basis = list(range(n, n + m))
    eps = 1e-9
    for __ in range(100 * (n + m + 1)):
        entering = next(
            (j for j in range(n + m) if objective[j] < -eps), None
        )
        if entering is None:
            return tuple(objective[n + e] for e in range(m))
        leaving, best = None, None
        for i, row in enumerate(rows):
            coefficient = row[entering]
            if coefficient > eps:
                ratio = row[-1] / coefficient
                if (
                    best is None
                    or ratio < best - eps
                    or (ratio <= best + eps and basis[i] < basis[leaving])
                ):
                    best, leaving = ratio, i
        if leaving is None:  # unbounded dual: an uncoverable variable
            return None
        pivot = rows[leaving][entering]
        rows[leaving] = [value / pivot for value in rows[leaving]]
        pivot_row = rows[leaving]
        for i, row in enumerate(rows):
            if i != leaving and row[entering] != 0.0:
                factor = row[entering]
                rows[i] = [
                    value - factor * p
                    for value, p in zip(row, pivot_row)
                ]
        factor = objective[entering]
        if factor != 0.0:
            objective = [
                value - factor * p
                for value, p in zip(objective, pivot_row)
            ]
        basis[leaving] = entering
    return None


def estimate_plan(
    plan: PlanNode, catalog: StatsCatalog | None = None
) -> dict[PlanNode, Estimate]:
    """Estimates for every node of ``plan`` (one-shot convenience)."""
    return CostModel(catalog).estimates(plan)


# ----------------------------------------------------------------------
# Parallel pricing
# ----------------------------------------------------------------------


def parallel_work_bound(model: CostModel, node: PlanNode) -> float:
    """Sound upper bound on ``node``'s own *splittable* work.

    The operator's estimated cost minus its children's — the share that
    key-disjoint batches actually divide among workers (reading the
    inputs is not divided; every row is scattered exactly once).

    The cost formulas for the hash operators are per-row linear, which
    understates the work of checking non-equality ``rest`` atoms: those
    run once per key-matched *pair*.  For a sound pair bound the
    operator is repriced as the eq-only hash join it would degenerate
    to — that join's certified output bound (MCV sketch / AGM) *is* the
    candidate-pair count, and the real work can only be smaller because
    ``any()`` stops at the first witness.  Infinite whenever the
    estimates certify nothing (zero-stats planning never parallelizes).
    """
    estimate = model.estimate(node)
    if not estimate.sound:
        return _INF
    own = estimate.cost - sum(
        model.estimate(child).cost for child in node.children()
    )
    own = max(own, 0.0)
    if isinstance(node, (HashJoinOp, HashSemijoinOp)) and any(
        atom.op != "=" for atom in node.cond
    ):
        from repro.algebra.conditions import Condition

        probe = HashJoinOp(
            node.left,
            node.right,
            Condition(node.cond.by_op("=")),
            node.expr,
        )
        own = max(own, model.estimate(probe).upper)
    return own


def parallel_cost_split(
    model: CostModel, node: ParallelOp
) -> tuple[float, float] | None:
    """Certified ``(serial, parallel)`` costs for ``node``, or ``None``.

    ``serial`` is what running the inner operator in one process costs;
    ``parallel`` adds the scatter pass, prices every potentially
    shipped row (bounded by the sound upper bounds), divides only the
    operator's own work (:func:`parallel_work_bound`) by the worker
    count, and charges the fixed per-batch and startup overheads.

    The transport price is per-backend (``model.backend``): rows going
    *out* to workers cost :data:`PARALLEL_IPC_ROW_COST` each on the
    memory backend (pickled fragments) but only
    :data:`PARALLEL_ATTACHED_ROW_COST` on attached backends, where the
    scatter writes one shared columnar shipment and workers attach by
    name (:mod:`repro.storage.ship`).  Result rows come *back* through
    the pool's pickled return path on every backend, so they stay at
    the IPC price.

    ``None`` when any bound involved is unsound or infinite — nothing
    can then certify that scatter + transport is paid back, so the
    planner keeps the serial plan (mirroring the partition gate's
    refusal to partition uncertified plans).
    """
    from repro.storage.backend import ATTACHED_KINDS

    inner = model.estimate(node.inner)
    work = parallel_work_bound(model, node.inner)
    if not inner.sound or not math.isfinite(work):
        return None
    if not math.isfinite(inner.upper):
        return None
    children = [
        model.estimate(child) for child in node.inner.children()
    ]
    if any(not math.isfinite(c.upper) for c in children):
        return None
    outbound_price = (
        PARALLEL_ATTACHED_ROW_COST
        if model.backend in ATTACHED_KINDS
        else PARALLEL_IPC_ROW_COST
    )
    base = sum(c.cost for c in children)
    serial = base + work
    outbound = sum(c.upper for c in children)
    parallel = (
        base
        + sum(c.rows for c in children)  # the scatter/grouping pass
        + work / max(node.workers, 1)
        + outbound_price * outbound
        + PARALLEL_IPC_ROW_COST * inner.upper  # results return pickled
        + PARALLEL_BATCH_COST * node.partitions
        + PARALLEL_STARTUP_COST
    )
    return serial, parallel
