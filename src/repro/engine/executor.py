"""Plan execution: streaming operators over a per-database index cache.

The executor walks a physical plan (:mod:`repro.engine.plan`) bottom-up,
memoizing every distinct sub-plan (mirroring the logical evaluator's
memoization) and keeping an :class:`IndexCache` of hash indexes keyed by
``(logical expression, key positions)``.  Two operators probing the same
input on the same columns — e.g. a hash join and a hash semijoin both
keyed on ``S[1]``, or repeated executions against the same database —
share one index build.

Alongside the indexes the executor owns a
:class:`~repro.engine.stats.StatsCatalog` (lazy per-relation statistics)
and a per-``(expression, options)`` plan memo, so
:meth:`Executor.plan` produces **cost-based** plans from this
database's actual cardinalities.  All three caches — indexes, stats,
plans — are guarded by the database's
:meth:`~repro.data.database.Database.version_token`: if relation
contents change under the same handle (a storage backend swapping data
behind the executor's back), every cache is invalidated before the next
query rather than served stale.

Unary operators (project/filter/tag) stream over their input via
generators; results are materialized once per distinct sub-plan, at the
memo boundary.  :class:`ExecutionStats` records the cardinality of every
operator's output — the physical analogue of the Definition 16 trace —
plus index build/reuse counts, which the ENGINE experiment and the
engine benchmarks assert against the classic plans' quadratic
intermediates.  Each execution also records the cost model's
**estimate next to the actual** output cardinality per operator
(``ExecutionStats.node_estimates``), which is what the estimator-quality
tests and benchmarks assert against.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.algebra.ast import Expr
from repro.algebra.evaluator import Relation
from repro.data.database import Database, Row
from repro.data.universe import Value
from repro.engine.plan import (
    DifferenceOp,
    DivisionOp,
    FilterOp,
    GroupByOp,
    HashJoinOp,
    HashSemijoinOp,
    MultiwayJoinOp,
    NestedLoopJoinOp,
    NestedLoopSemijoinOp,
    ParallelOp,
    PartitionedOp,
    PlanNode,
    ProjectOp,
    ScanOp,
    SortOp,
    TagOp,
    UnionOp,
)
from repro.errors import ArityError, SchemaError
from repro.setjoins.division import DIVISION_ALGORITHMS, DIVISION_EQ_ALGORITHMS


@dataclass
class ExecutionStats:
    """Observable work done by one executor.

    ``node_rows`` maps each executed plan node to its output
    cardinality; :meth:`max_intermediate` is the physical counterpart
    of :meth:`repro.algebra.trace.EvalTrace.max_intermediate`.
    ``node_estimates`` holds the cost model's per-operator
    :class:`~repro.engine.cost.Estimate` for the same nodes, so
    estimated and actual cardinalities can be compared after the fact
    (:meth:`estimation_pairs`; the soundness property tests live in
    ``tests/test_engine_cost.py``).
    """

    node_rows: dict[PlanNode, int] = field(default_factory=dict)
    node_estimates: dict[PlanNode, object] = field(default_factory=dict)
    #: Per-``PartitionedOp`` batch records (planned vs actual batch
    #: counts, per-batch rows in flight) — see
    #: :class:`repro.engine.partition.PartitionRun`.
    partition_runs: dict[PlanNode, object] = field(default_factory=dict)
    #: Per-``MultiwayJoinOp`` generic-join records (AGM bound vs actual
    #: output, intersection work) — see
    #: :class:`repro.engine.wcoj.WcojRun`.
    wcoj_runs: dict[PlanNode, object] = field(default_factory=dict)
    indexes_built: int = 0
    index_reuses: int = 0

    def max_intermediate(self) -> int:
        return max(self.node_rows.values(), default=0)

    def max_in_flight(self) -> int:
        """Peak *working set* (rows) of any one executed operator.

        For a one-shot operator: its inputs plus its output, which
        coexist while it runs.  For a partitioned operator: the
        recorded per-batch peak — the quantity the partition budget
        bounds.  Leaf scans contribute nothing of their own (stored
        relations exist whether or not they are scanned), though their
        rows do count as the consuming operator's input.  The partition
        benchmarks compare this figure between partitioned and
        unpartitioned runs of the same query.
        """
        peak = 0
        for node, produced in self.node_rows.items():
            run = self.partition_runs.get(node)
            if run is not None:
                peak = max(peak, run.peak_in_flight())
                continue
            children = node.children()
            if not children:  # leaf scan: no working set of its own
                continue
            held = produced + sum(
                self.node_rows.get(child, 0) for child in children
            )
            peak = max(peak, held)
        return peak

    def total_rows(self) -> int:
        return sum(self.node_rows.values())

    def estimation_pairs(self):
        """``(node, actual_rows, estimate)`` for every estimated node."""
        return tuple(
            (node, rows, self.node_estimates[node])
            for node, rows in self.node_rows.items()
            if node in self.node_estimates
        )

    def report(self) -> str:
        lines = [
            f"max intermediate : {self.max_intermediate()}",
            f"max in flight    : {self.max_in_flight()}",
            f"indexes built    : {self.indexes_built}"
            f" (reused {self.index_reuses}x)",
        ]
        for node, run in self.partition_runs.items():
            lines.append(f"{node.label()}: {run.render()}")
        for node, run in self.wcoj_runs.items():
            lines.append(f"{node.label()}: {run.render()}")
        ordered = sorted(
            self.node_rows.items(), key=lambda kv: -kv[1]
        )
        for node, rows in ordered:
            estimate = self.node_estimates.get(node)
            suffix = f"  ({estimate.render()})" if estimate else ""
            lines.append(f"{rows:>8}  {node.label()}{suffix}")
        return "\n".join(lines)


#: Default row budget for an :class:`IndexCache` — the same bounding
#: discipline as :data:`DEFAULT_CACHE_BYTES`, counted in indexed rows
#: because indexes hold references to existing row tuples rather than
#: new storage.
DEFAULT_INDEX_ROWS = 1_000_000


class IndexCache:
    """Hash indexes keyed by ``(logical expr, key positions)``.

    The logical expression identifies the input *value* (same database,
    same logical expression ⇒ same rows), so any operator needing the
    same keys on the same input reuses the build.

    Entries are LRU-evicted against ``row_budget`` (total rows across
    all cached indexes — the :class:`ResultCache` byte-budget
    discipline, in rows): a build or reuse marks the entry most
    recent, and builds pushing the total past the budget evict the
    least recently used entries — never the index just built, which
    the caller holds and which stays fully usable either way (eviction
    only forgets the cache's reference).  ``builds``/``reuses`` count
    events, not live entries, so a rebuild after eviction is a second
    build, not a reuse.

    All public methods are thread-safe: the serving layer
    (:mod:`repro.serve`) shares one executor across client threads,
    and an unguarded ``move_to_end`` racing a ``popitem`` corrupts the
    eviction order (or dies with ``KeyError`` mid-rebalance).  Builds
    happen inside the lock — two threads asking for the same index
    get one build, which is the cache's whole point; the hammer
    regression lives in ``tests/test_serve_threads.py``.
    """

    def __init__(self, row_budget: int = DEFAULT_INDEX_ROWS) -> None:
        if row_budget < 0:
            raise SchemaError(
                f"IndexCache row_budget must be >= 0, got {row_budget}"
            )
        self._indexes: "OrderedDict[" \
            "tuple[object, tuple[int, ...]]," \
            "tuple[dict[tuple[Value, ...], list[Row]], int]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.row_budget = row_budget
        self.builds = 0
        self.reuses = 0
        self.evictions = 0
        #: Total rows held across all cached indexes — the figure the
        #: LRU row budget bounds (decremented on eviction).
        self.rows_indexed = 0

    def index_for(
        self,
        key: object,
        rows: Iterable[Row],
        positions: tuple[int, ...],
    ) -> dict[tuple[Value, ...], list[Row]]:
        cache_key = (key, positions)
        with self._lock:
            cached = self._indexes.get(cache_key)
            if cached is not None:
                self._indexes.move_to_end(cache_key)
                self.reuses += 1
                return cached[0]
            index: dict[tuple[Value, ...], list[Row]] = defaultdict(list)
            count = 0
            for row in rows:
                index[tuple(row[p - 1] for p in positions)].append(row)
                count += 1
            built = dict(index)
            self._admit(cache_key, built, count)
            return built

    def trie_for(
        self,
        key: object,
        rows: Iterable[Row],
        columns_by_variable: tuple[tuple[int, ...], ...],
    ) -> dict:
        """Build/fetch a generic-join trie (:func:`repro.engine.wcoj.
        build_trie`) under the same LRU row budget as flat indexes.

        The cache key embeds the trie layout behind a ``"trie"``
        sentinel, so a trie and a flat index over the same logical
        input and columns never collide — their payload shapes differ.
        """
        cache_key = (key, ("trie",) + columns_by_variable)
        with self._lock:
            cached = self._indexes.get(cache_key)
            if cached is not None:
                self._indexes.move_to_end(cache_key)
                self.reuses += 1
                return cached[0]
            from repro.engine.wcoj import build_trie

            built, count = build_trie(rows, columns_by_variable)
            self._admit(cache_key, built, count)
            return built

    def _admit(self, cache_key, built, count: int) -> None:
        """Record a fresh build and rebalance the LRU (lock held)."""
        self._indexes[cache_key] = (built, count)
        self.builds += 1
        self.rows_indexed += count
        while (
            self.rows_indexed > self.row_budget and len(self._indexes) > 1
        ):
            __, (___, evicted_rows) = self._indexes.popitem(last=False)
            self.rows_indexed -= evicted_rows
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._indexes)


#: Default byte budget for a :class:`ResultCache` (estimated bytes of
#: cached row tuples, not process RSS): generous for the in-memory
#: workloads this engine targets while still bounding a long session.
DEFAULT_CACHE_BYTES = 32 * 1024 * 1024


def _result_bytes(result: Relation) -> int:
    """Estimated memory footprint of one cached result.

    A deliberate estimate (CPython tuple/frozenset header sizes plus
    one pointer per value), not a deep ``getsizeof`` walk — eviction
    needs a monotone, cheap measure, not an exact one.
    """
    return 64 + sum(56 + 8 * len(row) for row in result)


class ResultCache:
    """Cross-query result cache: ``(fingerprint, options, token) → rows``.

    The ROADMAP's cross-query caching seam, owned by the
    :class:`~repro.session.Session` front door and consulted by
    :meth:`Executor.execute_cached`.  The key triple makes staleness
    structural rather than temporal:

    * the **plan fingerprint** (:meth:`~repro.engine.plan.PlanNode.
      fingerprint`) identifies *what* is computed, so distinct query
      texts that plan to the same physical shape share one entry;
    * the **planner options** distinguish plans the same fingerprint
      could not (and keep ablation runs honest);
    * the **version token** (:meth:`~repro.data.database.Database.
      version_token`) identifies the contents the result was computed
      against — any mutation moves the token, and :meth:`invalidate`
      additionally drops every entry whenever the executor detects a
      version change, so a token colliding after an A→B→A content
      swap still cannot resurrect rows computed before the swap.

    Entries are LRU-evicted against ``byte_budget`` (estimated bytes
    of the cached rows — the same discipline as the executor's other
    LRU-bounded memos, but sized in bytes because results, unlike
    plans, can be arbitrarily wide).  A result larger than the whole
    budget is never admitted.  ``enabled=False`` turns every lookup
    into a bypass and every store into a no-op, so callers do not need
    two code paths; bypassed lookups are counted separately
    (``disabled_lookups``), never as misses, so hit rates describe
    only lookups the cache actually served.

    ``get``/``put``/``invalidate`` are thread-safe (one lock): the
    serving layer's worker sessions and any caller sharing a session
    across threads would otherwise race ``move_to_end`` against
    LRU eviction and corrupt the eviction order or the byte
    accounting (hammer regression in ``tests/test_serve_threads.py``).
    """

    def __init__(
        self,
        enabled: bool = True,
        byte_budget: int = DEFAULT_CACHE_BYTES,
    ) -> None:
        if byte_budget < 0:
            raise SchemaError(
                f"ResultCache byte_budget must be >= 0, got {byte_budget}"
            )
        self.enabled = enabled
        self.byte_budget = byte_budget
        self._entries: "OrderedDict[tuple, tuple[Relation, int]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        #: Lookups made while the cache was disabled — not misses (the
        #: cache never got a chance), tracked so implicit shared
        #: sessions (caching off by contract) keep hit rates honest.
        self.disabled_lookups = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> Relation | None:
        """The cached rows for ``key``, or None (counted as hit/miss)."""
        if not self.enabled:
            self.disabled_lookups += 1
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, key: tuple, result: Relation) -> None:
        """Store ``result``, evicting LRU entries past the byte budget."""
        if not self.enabled:
            return
        size = _result_bytes(result)
        if size > self.byte_budget:
            return  # would evict everything and still not fit
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.total_bytes -= old[1]
            self._entries[key] = (result, size)
            self.total_bytes += size
            while (
                self.total_bytes > self.byte_budget
                and len(self._entries) > 1
            ):
                __, (___, evicted_size) = self._entries.popitem(last=False)
                self.total_bytes -= evicted_size
                self.evictions += 1

    def invalidate(self) -> None:
        """Drop every entry (called on version-token movement)."""
        with self._lock:
            if self._entries:
                self.invalidations += 1
            self._entries.clear()
            self.total_bytes = 0

    def stats_line(self) -> str:
        if not self.enabled:
            return (
                "result cache [off]: "
                f"{self.disabled_lookups} bypassed lookup(s)"
            )
        return (
            f"result cache [on]: {self.hits} hit(s), "
            f"{self.misses} miss(es), {len(self)} entr(y/ies), "
            f"~{self.total_bytes} byte(s), {self.evictions} eviction(s)"
        )


class Executor:
    """Execute physical plans against one database.

    Keep an executor alive across queries to reuse its memo, index
    cache, statistics, and plan memo; :func:`execute_plan` is the
    one-shot convenience.  All caches are invalidated together when the
    database's version token changes (see module docstring).

    The plan and estimate memos are LRU-bounded (long-running processes
    — classification probes, bisimulation loops — plan many distinct
    small expressions against few databases, so unbounded memos would
    grow forever), and the shared cost model is recycled once its node
    memo passes :data:`COST_MEMO_BOUND` (estimates are cheap to
    recompute; rejected candidate plans would otherwise pin memory).
    """

    #: Max (expression, options) plans and per-plan estimate maps kept.
    PLAN_CACHE_SIZE = 512
    #: Max nodes the shared cost model may memoize before recycling.
    COST_MEMO_BOUND = 50_000

    def __init__(
        self,
        db: Database,
        results: ResultCache | None = None,
        backend=None,
    ) -> None:
        from repro.engine.cost import CostModel
        from repro.engine.stats import StatsCatalog
        from repro.storage import Backend, open_backend

        self.db = db
        if backend is None:
            backend = open_backend(db, "memory")
        elif isinstance(backend, str):
            backend = open_backend(db, backend)
        elif not isinstance(backend, Backend):
            raise SchemaError(
                "backend must be a kind name or a repro.storage."
                f"Backend, got {type(backend).__name__}"
            )
        elif backend.db is not db:
            # Identity, not equality: version tokens are per-handle,
            # so a backend over an equal-but-distinct Database would
            # never observe this handle's mutations.
            raise SchemaError(
                "backend is bound to a different database; storage "
                "snapshots are per-database — open a matching backend"
            )
        #: Where relation contents are read from (``repro.storage``).
        #: Scans, the partition/parallel staleness checks, and the
        #: parallel shipment transport all go through it; the memory
        #: backend reproduces the pre-backend direct-dict behaviour
        #: exactly.
        self.backend = backend
        self.indexes = IndexCache()
        self.stats = ExecutionStats()
        # Statistics read rows through the backend and key their cache
        # by its version token, so the profile describes exactly the
        # snapshot scans execute against — even on per-read-decode
        # backends (mmap) where every read is a fresh frozenset.
        self.catalog = StatsCatalog(db, backend=backend)
        #: One cost model for planning *and* execution-time recording,
        #: so estimates priced during planning are reused, not redone.
        self.cost_model = CostModel(self.catalog, backend=backend.kind)
        #: Feedback-triggered re-plans performed (estimator error for a
        #: memoized plan drifted past its options' replan_threshold).
        self.feedback_replans = 0
        #: Whether the most recent :meth:`plan` call re-planned due to
        #: feedback drift (surfaced as ``ExecutionReport.replanned``).
        self.last_plan_replanned = False
        #: The replan threshold active for the current :meth:`execute`
        #: call — read by the partition layer's mid-query re-pack.
        self._replan_threshold: float | None = None
        #: The cross-query result cache seam (None → no caching).  The
        #: :class:`~repro.session.Session` front door passes one in;
        #: it is invalidated with every other cache on version-token
        #: movement, so a mutated database is never served stale rows.
        self.results = results
        self._memo: dict[PlanNode, Relation] = {}
        # Memoized plans: (plan, ledger revision at pricing, factor
        # snapshot) — the latter two drive the feedback re-plan check.
        self._plans: (
            "OrderedDict[tuple[Expr, object],"
            " tuple[PlanNode, int, dict[tuple, float]]]"
        ) = OrderedDict()
        self._estimates: "OrderedDict[PlanNode, dict[PlanNode, object]]" = (
            OrderedDict()
        )
        self._version = backend.version_token()

    @property
    def version(self) -> int:
        """The contents version the executor's caches are valid for."""
        return self._version

    def check_version(self) -> None:
        """Invalidate every cache if the relation contents changed.

        Cheap when nothing changed (one hash over cached frozenset
        hashes); called before planning and before execution so a
        mutated database — contents swapped behind the same handle —
        never gets stale indexes, statistics, plans, or results.
        """
        from repro.engine.cost import CostModel

        current = self.backend.version_token()
        if current == self._version:
            return
        self._version = current
        self._memo.clear()
        self._plans.clear()
        self._estimates.clear()
        self.indexes = IndexCache()
        # invalidate() drops statistics only; the feedback ledger is
        # workload knowledge and deliberately survives token movement.
        self.catalog.invalidate()
        self.cost_model = CostModel(
            self.catalog,
            backend=self.backend.kind,
            feedback=self.cost_model.feedback,
        )
        self.stats = ExecutionStats()
        if self.results is not None:
            self.results.invalidate()
        # Columnar backends snapshot contents at encode time; re-encode
        # so the next scan reads the new contents instead of raising
        # StaleDataError on the stale snapshot.
        self.backend.refresh()

    def plan(self, expr: Expr, options=None) -> PlanNode:
        """Cost-based plan for ``expr`` using this database's statistics.

        Plans are memoized per ``(expression, options)`` and
        invalidated with the version token — a cost-chosen plan is only
        valid for the statistics it was priced against.  With a
        ``replan_threshold`` set, a memoized plan is additionally
        dropped and re-planned when the feedback ledger's correction
        factor for any of its operators has drifted by at least the
        threshold since the plan was priced — the adaptive
        re-optimization loop (``docs/engine.md`` § Adaptive feedback).
        """
        from repro.engine.cost import CostModel
        from repro.engine.planner import DEFAULT_OPTIONS, Planner

        if options is None:
            options = DEFAULT_OPTIONS
        self.check_version()
        self._sync_feedback_mode(options)
        self.last_plan_replanned = False
        threshold = getattr(options, "replan_threshold", None)
        ledger = self.catalog.feedback
        key = (expr, options)
        cached = self._plans.get(key)
        if cached is not None:
            planned, revision, factors = cached
            if (
                threshold is None
                or revision == ledger.revision
                or self._feedback_drift(factors) < threshold
            ):
                if revision != ledger.revision:
                    # Drift below the threshold: keep the plan, but
                    # remember the revision checked so unchanged
                    # ledgers skip the drift walk next time.
                    self._plans[key] = (planned, ledger.revision, factors)
                self._plans.move_to_end(key)
                return planned
            # Observed estimator error for this plan crossed the
            # threshold: drop it and re-price with a fresh cost model
            # so the corrected estimates actually apply.
            del self._plans[key]
            self._estimates.clear()
            self.cost_model = CostModel(
                self.catalog,
                backend=self.backend.kind,
                feedback=self.cost_model.feedback,
            )
            self.feedback_replans += 1
            self.last_plan_replanned = True
        if len(self.cost_model) > self.COST_MEMO_BOUND:
            self.cost_model = CostModel(
                self.catalog,
                backend=self.backend.kind,
                feedback=self.cost_model.feedback,
            )
        planned = Planner(options, self.catalog, self.cost_model).plan(expr)
        self._plans[key] = (
            planned,
            ledger.revision,
            self._feedback_factors(planned),
        )
        while len(self._plans) > self.PLAN_CACHE_SIZE:
            self._plans.popitem(last=False)
        return planned

    def _feedback_factors(self, plan: PlanNode) -> dict[tuple, float]:
        """Snapshot of ledger factors for every fed operator in ``plan``.

        Unknown keys snapshot as 1.0 (the implicit "estimate is right"
        factor), so learning a large error for an operator the plan
        was priced without registers as drift.
        """
        from repro.engine.stats import feedback_key

        ledger = self.catalog.feedback
        factors: dict[tuple, float] = {}
        for node in plan.nodes():
            key = feedback_key(node)
            if key is None:
                continue
            current = ledger.factor(key)
            factors[key] = 1.0 if current is None else current
        return factors

    def _feedback_drift(self, factors: dict[tuple, float]) -> float:
        """Worst factor movement since ``factors`` was snapshot (≥ 1)."""
        ledger = self.catalog.feedback
        worst = 1.0
        for key, snapshot in factors.items():
            current = ledger.factor(key)
            current = 1.0 if current is None else current
            if current <= 0.0 or snapshot <= 0.0:
                continue
            worst = max(worst, current / snapshot, snapshot / current)
        return worst

    def _sync_feedback_mode(self, options) -> None:
        """Attach/detach the ledger from the cost model per options.

        Corrections apply only when the caller planned with a
        ``replan_threshold`` — threshold-free planning stays
        byte-identical to the pre-feedback behaviour (the ledger still
        *records*, it just corrects nothing).  The model is recycled on
        a mode switch so corrected and uncorrected estimates never mix
        in one memo.
        """
        from repro.engine.cost import CostModel

        wants = getattr(options, "replan_threshold", None) is not None
        ledger = self.catalog.feedback if wants else None
        if (self.cost_model.feedback is None) != (ledger is None):
            self.cost_model = CostModel(
                self.catalog, backend=self.backend.kind, feedback=ledger
            )
            self._estimates.clear()

    def execute(self, plan: PlanNode, options=None) -> Relation:
        """Evaluate ``plan``; returns a ``frozenset`` of rows.

        Every execution feeds the catalog's feedback ledger with the
        run's estimated-vs-actual pairs (recording is unconditional and
        cheap; nothing *reads* the ledger unless planning ran with a
        ``replan_threshold``).  When ``options`` carry a threshold, it
        is also exposed to partitioned operators for the duration of
        the run so they may re-pack remaining batches mid-query.
        """
        self.check_version()
        if options is not None:
            self._sync_feedback_mode(options)
        threshold = getattr(options, "replan_threshold", None)
        self._replan_threshold = threshold
        try:
            result = self._rows(plan)
        finally:
            self._replan_threshold = None
        self.stats.indexes_built = self.indexes.builds
        self.stats.index_reuses = self.indexes.reuses
        self.stats.node_estimates.update(self._estimates_for(plan))
        self._feed_feedback()
        return result

    def _feed_feedback(self) -> None:
        """Fold this run's estimated-vs-actual pairs into the ledger.

        Called only from :meth:`execute` — result-cache hits execute
        zero operators, never reach here, and so cannot poison the
        ledger with ``actual=0`` against a real estimate.  Raw
        (uncorrected) estimates are recorded so stored factors converge
        to the true model error instead of compounding corrections.
        """
        from repro.engine.stats import feedback_key

        ledger = self.catalog.feedback
        for node, actual, estimate in self.stats.estimation_pairs():
            key = feedback_key(node)
            if key is None:
                continue
            raw = (
                estimate.raw_rows
                if estimate.raw_rows is not None
                else estimate.rows
            )
            ledger.record(key, raw, actual)

    def cache_key(self, plan: PlanNode, options) -> tuple:
        """The result-cache key for ``plan`` under ``options`` *now*.

        ``(plan fingerprint, planner options, version token)`` — see
        :class:`ResultCache` for why each component is needed.  Call
        after :meth:`check_version` (``plan``/``execute`` do) so the
        token matches the statistics the plan was priced against.
        """
        return (plan.fingerprint(), options, self._version)

    def execute_cached(self, plan: PlanNode, options) -> tuple[Relation, bool]:
        """Execute ``plan``, serving from the result cache when possible.

        Returns ``(rows, cached)``.  On a hit no plan node is
        dispatched at all — ``ExecutionStats`` records zero operator
        executions — which is the contract the session-level cache
        tests assert.  On a miss the result is computed by
        :meth:`execute` and stored.  With no :attr:`results` cache
        attached this is exactly ``(self.execute(plan), False)``.
        """
        self.check_version()
        if self.results is None:
            return self.execute(plan, options), False
        key = self.cache_key(plan, options)
        cached = self.results.get(key)
        if cached is not None:
            return cached, True
        result = self.execute(plan, options)
        self.results.put(key, result)
        return result, False

    def _estimates_for(self, plan: PlanNode):
        """Cost-model estimates for ``plan``, memoized per version.

        Reuses the executor's shared cost model, so nodes already
        priced during planning are not re-estimated here.
        """
        cached = self._estimates.get(plan)
        if cached is not None:
            self._estimates.move_to_end(plan)
            return cached
        computed = self.cost_model.estimates(plan)
        self._estimates[plan] = computed
        while len(self._estimates) > self.PLAN_CACHE_SIZE:
            self._estimates.popitem(last=False)
        return computed

    def reset_query_state(self) -> None:
        """Drop per-query state (result memo, stats), keep the indexes.

        :func:`repro.engine.run` calls this between top-level queries
        on its implicitly cached executors: hash indexes amortize
        across queries, but results are recomputed per call — so
        repeated evaluations measure real work, and large result sets
        are never pinned by the cache.  Caller-managed executors keep
        their memo until they choose to reset.
        """
        self._memo.clear()
        self.stats = ExecutionStats()

    def close(self) -> None:
        """Release the backend's storage (idempotent).

        Shared-memory segments and spill files are owned by the
        backend; :meth:`~repro.session.Session.close` routes here so a
        session's storage never outlives it.  A memory backend has
        nothing to release but is still marked closed, keeping the
        "closed sessions don't serve queries" contract uniform across
        backends.
        """
        self.backend.close()

    # ------------------------------------------------------------------
    # Node dispatch
    # ------------------------------------------------------------------

    def _rows(self, node: PlanNode) -> Relation:
        cached = self._memo.get(node)
        if cached is not None:
            return cached
        result = frozenset(self._compute(node))
        self._memo[node] = result
        self.stats.node_rows[node] = len(result)
        return result

    def _compute(self, node: PlanNode) -> Iterable[Row]:
        if isinstance(node, ScanOp):
            return self._scan(node)
        if isinstance(node, UnionOp):
            return self._rows(node.left) | self._rows(node.right)
        if isinstance(node, DifferenceOp):
            return self._rows(node.left) - self._rows(node.right)
        if isinstance(node, ProjectOp):
            idx = tuple(p - 1 for p in node.positions)
            return (
                tuple(row[i] for i in idx) for row in self._rows(node.child)
            )
        if isinstance(node, FilterOp):
            return (
                row for row in self._rows(node.child) if node.holds(row)
            )
        if isinstance(node, TagOp):
            return (
                row + (node.value,) for row in self._rows(node.child)
            )
        if isinstance(node, HashJoinOp):
            return self._hash_join(node)
        if isinstance(node, NestedLoopJoinOp):
            return self._nested_loop_join(node)
        if isinstance(node, MultiwayJoinOp):
            return self._multiway(node)
        if isinstance(node, HashSemijoinOp):
            return self._hash_semijoin(node)
        if isinstance(node, NestedLoopSemijoinOp):
            return self._nested_loop_semijoin(node)
        if isinstance(node, DivisionOp):
            return self._division(node)
        if isinstance(node, PartitionedOp):
            return self._partitioned(node)
        if isinstance(node, ParallelOp):
            return self._parallel(node)
        if isinstance(node, GroupByOp):
            return self._group_by(node)
        if isinstance(node, SortOp):
            return self._rows(node.child)
        raise SchemaError(
            f"executor: unknown plan node {type(node).__name__}"
        )

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------

    def _scan(self, node: ScanOp) -> Relation:
        name = node.expr.name
        stored = self.backend.rows(name)
        if self.db.schema[name] != node.expr.arity:
            raise ArityError(
                f"plan expects {name!r} with arity {node.expr.arity}, "
                f"database has arity {self.db.schema[name]}"
            )
        return stored

    def _probe_index(
        self, node: PlanNode, cond
    ) -> tuple[dict, tuple[int, ...], tuple]:
        """Build/fetch the right-side index for a hash (semi)join."""
        eq = cond.by_op("=")
        right_positions = tuple(a.j for a in eq)
        index = self.indexes.index_for(
            node.right.logical, self._rows(node.right), right_positions
        )
        left_positions = tuple(a.i for a in eq)
        rest = tuple(a for a in cond if a.op != "=")
        return index, left_positions, rest

    def _hash_join(self, node: HashJoinOp) -> Iterator[Row]:
        index, left_positions, rest = self._probe_index(node, node.cond)
        for lrow in self._rows(node.left):
            key = tuple(lrow[p - 1] for p in left_positions)
            for rrow in index.get(key, ()):
                if all(atom.holds(lrow, rrow) for atom in rest):
                    yield lrow + rrow

    def _nested_loop_join(self, node: NestedLoopJoinOp) -> Iterator[Row]:
        right = self._rows(node.right)
        for lrow in self._rows(node.left):
            for rrow in right:
                if node.cond.holds(lrow, rrow):
                    yield lrow + rrow

    def _multiway(self, node: MultiwayJoinOp) -> Iterable[Row]:
        from repro.engine.wcoj import run_multiway

        return run_multiway(self, node)

    def _hash_semijoin(self, node: HashSemijoinOp) -> Iterator[Row]:
        index, left_positions, rest = self._probe_index(node, node.cond)
        for lrow in self._rows(node.left):
            key = tuple(lrow[p - 1] for p in left_positions)
            candidates = index.get(key, ())
            if any(
                all(atom.holds(lrow, rrow) for atom in rest)
                for rrow in candidates
            ):
                yield lrow

    def _nested_loop_semijoin(
        self, node: NestedLoopSemijoinOp
    ) -> Iterator[Row]:
        right = self._rows(node.right)
        for lrow in self._rows(node.left):
            if any(node.cond.holds(lrow, rrow) for rrow in right):
                yield lrow

    def _division(self, node: DivisionOp) -> Iterator[Row]:
        dividend = self._rows(node.dividend)
        divisor_rows = self._rows(node.divisor)
        if not divisor_rows and node.empty_divisor == "none":
            # γ-plan semantics: the join with an empty divisor kills
            # every group, so the source expression returns ∅.
            return iter(())
        divisor = [row[0] for row in divisor_rows]
        registry = DIVISION_EQ_ALGORITHMS if node.eq else DIVISION_ALGORITHMS
        algorithm = registry[node.method]
        quotient = algorithm(dividend, divisor)
        return ((a,) for a in quotient)

    def _partitioned(self, node: PartitionedOp) -> Iterable[Row]:
        """Budget-bounded batch execution (see :mod:`repro.engine.partition`).

        The wrapped operator is *not* dispatched through :meth:`_rows`
        — that would run it one-shot and record its whole intermediate
        as a single working set instead of the per-batch figures the
        budget is checked against.  Its children are, so fragments
        come from the usual memo, and hash (semi)join groupings go
        through :class:`IndexCache` under the same keys the one-shot
        operators use (partitioned and one-shot runs share builds;
        re-executions against unchanged contents regroup nothing).
        """
        from repro.engine.partition import run_partitioned

        return run_partitioned(self, node)

    def _parallel(self, node: ParallelOp) -> Iterable[Row]:
        """Shard-per-worker execution (see :mod:`repro.engine.parallel`).

        Same memoization discipline as :meth:`_partitioned`: the inner
        operator is never dispatched through :meth:`_rows`, its
        children are, and the scatter's groupings share the
        :class:`IndexCache` with the serial paths.
        """
        from repro.engine.parallel import run_parallel

        return run_parallel(self, node)

    def _group_by(self, node: GroupByOp) -> Relation:
        from repro.extended.evaluator import _eval_group_by

        return _eval_group_by(node.expr, self._rows(node.child))


def execute_plan(
    plan: PlanNode, db: Database, executor: Executor | None = None
) -> Relation:
    """One-shot plan execution (pass an executor to reuse its caches)."""
    if executor is None:
        executor = Executor(db)
    elif executor.db is not db and executor.db != db:
        raise SchemaError(
            "executor is bound to a different database; caches are "
            "per-database — create a new Executor"
        )
    return executor.execute(plan)
