"""The cost-aware planner: logical expressions → physical plans.

Routing rules (documented in ``docs/engine.md``):

1. **Division patterns collapse to direct algorithms.**  The classic
   quadratic RA plan ``π_A(R) − π_A((π_A(R) × S) − R)`` (Proposition 26
   says *every* RA expression for division is quadratic) and the §5
   γ plans (containment and equality) are recognized structurally and
   replaced by a single linear :class:`~repro.engine.plan.DivisionOp`
   running Graefe's hash division by default.  The empty-divisor
   semantics of the source expression is preserved exactly.
2. **Projected joins become semijoins.**  ``π_p̄(E1 ⋈_θ E2)`` with p̄ on
   one side routes through a semijoin operator — the Corollary 19
   move: the join was only a filter, so the quadratic intermediate is
   never materialized.
3. **Equality atoms select hash operators.**  Joins/semijoins with at
   least one ``=`` atom run as hash joins (index on the right, probe
   from the left); pure θ/cartesian joins fall back to nested loops
   and the planner records the dichotomy risk
   (:func:`repro.core.classify.join_is_safe`, Definition 20 data from
   :mod:`repro.core.joininfo`) in the operator's ``note``.
4. **Selections are pushed toward the leaves** first (reusing
   :func:`repro.algebra.optimize.push_selections`), then fused into
   single :class:`~repro.engine.plan.FilterOp` nodes.

:func:`plan_expression` is the entry point; :func:`explain` renders the
chosen plan, optionally with the full Theorem 17 dichotomy verdict from
:func:`repro.core.dichotomy.analyze`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.ast import (
    ConstantTag,
    Difference,
    Expr,
    Join,
    Projection,
    Rel,
    Selection,
    Semijoin,
    Union,
)
from repro.algebra.conditions import Atom, Condition
from repro.core.classify import join_is_safe
from repro.core.joininfo import JoinInfo
from repro.data.schema import Schema
from repro.engine.plan import (
    DivisionOp,
    DifferenceOp,
    FilterOp,
    GroupByOp,
    HashJoinOp,
    HashSemijoinOp,
    NestedLoopJoinOp,
    NestedLoopSemijoinOp,
    PlanNode,
    ProjectOp,
    ScanOp,
    SortOp,
    TagOp,
    UnionOp,
)
from repro.errors import SchemaError

#: The empty condition, used to recognize cartesian products.
_TRUE = Condition()


@dataclass(frozen=True)
class PlannerOptions:
    """Knobs for the planner.

    ``division_method`` picks the direct algorithm DivisionOp runs
    (``"hash"`` is O(n); ``"sort_merge"``/``"counting"``/
    ``"nested_loop"`` exist for experiments and ablations).
    ``rewrite_divisions`` / ``introduce_semijoins`` / ``push_selections``
    gate the three rewrites so ablations can isolate each one.
    """

    division_method: str = "hash"
    rewrite_divisions: bool = True
    introduce_semijoins: bool = True
    push_selections: bool = True


DEFAULT_OPTIONS = PlannerOptions()


# ----------------------------------------------------------------------
# Division pattern recognition
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DivisionMatch:
    """A recognized division sub-tree."""

    dividend: Expr
    divisor: Expr
    eq: bool
    empty_divisor: str
    origin: str


def match_classic_division(expr: Expr) -> DivisionMatch | None:
    """Recognize ``π_A(R) − π_A((π_A(R) × S) − R)`` (any sub-exprs R, S).

    The textbook plan built by
    :func:`repro.setjoins.division.classic_division_expr`; on an empty
    divisor it returns all candidates (``R ÷ ∅ = π_A(R)``).
    """
    if not isinstance(expr, Difference):
        return None
    candidates, disqualified = expr.left, expr.right
    if not (
        isinstance(candidates, Projection)
        and candidates.positions == (1,)
        and candidates.child.arity == 2
    ):
        return None
    dividend = candidates.child
    if not (
        isinstance(disqualified, Projection)
        and disqualified.positions == (1,)
        and isinstance(disqualified.child, Difference)
    ):
        return None
    missing = disqualified.child
    if missing.right != dividend:
        return None
    cross = missing.left
    if not (
        isinstance(cross, Join)
        and cross.cond == _TRUE
        and cross.left == candidates
        and cross.right.arity == 1
    ):
        return None
    return DivisionMatch(
        dividend=dividend,
        divisor=cross.right,
        eq=False,
        empty_divisor="all",
        origin="classic RA division plan (quadratic, Prop. 26)",
    )


def _is_count_group(expr: Expr, positions: tuple[int, ...], over: int):
    """Whether ``expr`` is ``γ_{positions, count(over)}(child)``; → child."""
    try:
        from repro.extended.ast import GroupBy
    except ImportError:  # pragma: no cover - extended always ships
        return None
    if not isinstance(expr, GroupBy):
        return None
    if expr.group_positions != positions:
        return None
    if len(expr.aggregates) != 1:
        return None
    aggregate = expr.aggregates[0]
    if aggregate.func != "count" or aggregate.position != over:
        return None
    return expr.child


_B_EQ_C = Condition((Atom(2, "=", 1),))


def match_gamma_containment_division(expr: Expr) -> DivisionMatch | None:
    """Recognize the §5 containment plan
    ``π_A(γ_{A,count}(R ⋈_{2=1} S) ⋈_{2=1} γ_{count}(S))``.

    Returns ∅ on an empty divisor (the documented caveat), which the
    match records as the ``"none"`` policy.
    """
    if not (isinstance(expr, Projection) and expr.positions == (1,)):
        return None
    matched = expr.child
    if not (isinstance(matched, Join) and matched.cond == _B_EQ_C):
        return None
    joined = _is_count_group(matched.left, (1,), 2)
    divisor = _is_count_group(matched.right, (), 1)
    if joined is None or divisor is None:
        return None
    if not (isinstance(joined, Join) and joined.cond == _B_EQ_C):
        return None
    dividend = joined.left
    if dividend.arity != 2 or joined.right != divisor:
        return None
    if divisor.arity != 1:
        return None
    return DivisionMatch(
        dividend=dividend,
        divisor=divisor,
        eq=False,
        empty_divisor="none",
        origin="§5 γ containment-division plan",
    )


def match_gamma_equality_division(expr: Expr) -> DivisionMatch | None:
    """Recognize the §5 equality plan built by
    :func:`repro.extended.division_plan.equality_division_plan`."""
    if not (isinstance(expr, Projection) and expr.positions == (1,)):
        return None
    selected = expr.child
    if not (
        isinstance(selected, Selection)
        and selected.op == "="
        and (selected.i, selected.j) == (4, 5)
    ):
        return None
    with_k = selected.child
    if not (isinstance(with_k, Join) and with_k.cond == _B_EQ_C):
        return None
    per_candidate, divisor_size = with_k.left, with_k.right
    divisor = _is_count_group(divisor_size, (), 1)
    if divisor is None or divisor.arity != 1:
        return None
    if not (
        isinstance(per_candidate, Join)
        and per_candidate.cond == Condition((Atom(1, "=", 1),))
    ):
        return None
    joined = _is_count_group(per_candidate.left, (1,), 2)
    totals = _is_count_group(per_candidate.right, (1,), 2)
    if joined is None or totals is None:
        return None
    if not (isinstance(joined, Join) and joined.cond == _B_EQ_C):
        return None
    dividend = joined.left
    if dividend.arity != 2 or dividend != totals:
        return None
    if joined.right != divisor:
        return None
    return DivisionMatch(
        dividend=dividend,
        divisor=divisor,
        eq=True,
        empty_divisor="none",
        origin="§5 γ equality-division plan",
    )


def match_division(expr: Expr) -> DivisionMatch | None:
    """Try all known division shapes at this node."""
    for matcher in (
        match_classic_division,
        match_gamma_containment_division,
        match_gamma_equality_division,
    ):
        found = matcher(expr)
        if found is not None:
            return found
    return None


# ----------------------------------------------------------------------
# The planner
# ----------------------------------------------------------------------


class Planner:
    """Translate logical expressions into physical plans.

    Planning is memoized per distinct sub-expression: expressions are
    trees whose structurally equal subtrees can repeat (the
    intersection chains of ``small_divisor_expr`` double a subtree per
    level), so an occurrence-by-occurrence walk would be exponential
    while the distinct-node walk is linear — and shared logical
    subtrees come back as the *same* plan node, which the executor then
    computes once.
    """

    #: Occurrence budget for the global selection-pushdown rewrite,
    #: which (unlike planning) walks occurrences, not distinct nodes.
    PUSHDOWN_SIZE_LIMIT = 512

    def __init__(self, options: PlannerOptions = DEFAULT_OPTIONS) -> None:
        self.options = options
        self._memo: dict[Expr, PlanNode] = {}

    def plan(self, expr: Expr) -> PlanNode:
        """Plan a logical expression (RA/SA, optionally with γ/Sort)."""
        if (
            self.options.push_selections
            and _is_core(expr)
            and _occurrences_within(expr, self.PUSHDOWN_SIZE_LIMIT)
        ):
            from repro.algebra.optimize import push_selections

            expr = push_selections(expr)
        return self._plan(expr)

    # -- recursive translation -----------------------------------------

    def _plan(self, expr: Expr) -> PlanNode:
        cached = self._memo.get(expr)
        if cached is not None:
            return cached
        planned = self._plan_node(expr)
        self._memo[expr] = planned
        return planned

    def _plan_node(self, expr: Expr) -> PlanNode:
        if self.options.rewrite_divisions:
            match = match_division(expr)
            if match is not None:
                return self._division(expr, match)
        if isinstance(expr, Rel):
            return ScanOp(expr)
        if isinstance(expr, Union):
            return UnionOp(self._plan(expr.left), self._plan(expr.right), expr)
        if isinstance(expr, Difference):
            return DifferenceOp(
                self._plan(expr.left), self._plan(expr.right), expr
            )
        if isinstance(expr, Projection):
            return self._projection(expr)
        if isinstance(expr, Selection):
            return self._selection(expr)
        if isinstance(expr, ConstantTag):
            return TagOp(self._plan(expr.child), expr.value, expr)
        if isinstance(expr, Join):
            return self._join(expr, self._plan(expr.left), self._plan(expr.right))
        if isinstance(expr, Semijoin):
            return self._semijoin(
                expr, self._plan(expr.left), self._plan(expr.right), expr.cond
            )
        extended = self._plan_extended(expr)
        if extended is not None:
            return extended
        raise SchemaError(
            f"planner: unknown expression node {type(expr).__name__}"
        )

    def _plan_extended(self, expr: Expr) -> PlanNode | None:
        try:
            from repro.extended.ast import GroupBy, Sort
        except ImportError:  # pragma: no cover - extended always ships
            return None
        if isinstance(expr, GroupBy):
            return GroupByOp(self._plan(expr.child), expr)
        if isinstance(expr, Sort):
            return SortOp(self._plan(expr.child), expr)
        return None

    # -- operator choice ------------------------------------------------

    def _division(self, expr: Expr, match: DivisionMatch) -> PlanNode:
        method = self.options.division_method
        cost = {
            "hash": "O(|R|+|S|)",
            "counting": "O(|R|+|S|)",
            "sort_merge": "O(|R| log |R|)",
            "nested_loop": "O(|A|·|S|)",
        }.get(method, "?")  # DivisionOp rejects unknown methods
        return DivisionOp(
            dividend=self._plan(match.dividend),
            divisor=self._plan(match.divisor),
            method=method,
            eq=match.eq,
            empty_divisor=match.empty_divisor,
            expr=expr,
            note=f"rewritten from {match.origin}; direct {method} "
            f"division is {cost}",
        )

    def _projection(self, expr: Projection) -> PlanNode:
        child = expr.child
        if self.options.introduce_semijoins and isinstance(child, Join):
            left_arity = child.left.arity
            if all(p <= left_arity for p in expr.positions):
                semijoin = self._semijoin(
                    Semijoin(child.left, child.right, child.cond),
                    self._plan(child.left),
                    self._plan(child.right),
                    child.cond,
                    note="join used only as a filter (Cor. 19): "
                    "semijoin avoids the join's intermediate",
                )
                return ProjectOp(semijoin, expr.positions, expr)
            if all(p > left_arity for p in expr.positions):
                mirrored = child.cond.mirrored()
                semijoin = self._semijoin(
                    Semijoin(child.right, child.left, mirrored),
                    self._plan(child.right),
                    self._plan(child.left),
                    mirrored,
                    note="join used only as a right-side filter "
                    "(Cor. 19): mirrored semijoin",
                )
                remapped = tuple(p - left_arity for p in expr.positions)
                return ProjectOp(semijoin, remapped, expr)
        return ProjectOp(self._plan(child), expr.positions, expr)

    def _selection(self, expr: Selection) -> PlanNode:
        # Fuse stacked selections into one FilterOp.
        predicates: list[tuple[str, int, int]] = []
        node: Expr = expr
        while isinstance(node, Selection):
            predicates.append((node.op, node.i, node.j))
            node = node.child
        return FilterOp(self._plan(node), tuple(predicates), expr)

    def _join(self, expr: Join, left: PlanNode, right: PlanNode) -> PlanNode:
        info = JoinInfo.of(expr)
        if expr.cond.by_op("="):
            keys = ",".join(str(j) for __, j in sorted(info.theta_eq()))
            note = f"equality atoms: hash index on right[{keys}]"
            if not join_is_safe(expr):
                note += (
                    "; dichotomy: no side fully constrained — output "
                    "may still be quadratic (Thm. 17)"
                )
            return HashJoinOp(left, right, expr.cond, expr, note=note)
        note = (
            "no equality atoms: nested loop; dichotomy: quadratic "
            "candidate space (Thm. 17 / Lemma 24)"
            if not join_is_safe(expr)
            else "no equality atoms: nested loop over a constant side"
        )
        return NestedLoopJoinOp(left, right, expr.cond, expr, note=note)

    def _semijoin(
        self,
        expr: Expr,
        left: PlanNode,
        right: PlanNode,
        cond: Condition,
        note: str = "",
    ) -> PlanNode:
        if cond.by_op("="):
            extra = "hash semijoin (linear, SA= fragment)"
            merged = f"{note}; {extra}" if note else extra
            return HashSemijoinOp(left, right, cond, expr, note=merged)
        extra = "nested-loop semijoin (linear output, |L|·|R| probes)"
        merged = f"{note}; {extra}" if note else extra
        return NestedLoopSemijoinOp(left, right, cond, expr, note=merged)


_CORE_NODES = (
    Rel,
    Union,
    Difference,
    Projection,
    Selection,
    ConstantTag,
    Join,
    Semijoin,
)


def _is_core(expr: Expr) -> bool:
    """Whether the expression uses only core RA/SA nodes.

    Walks *distinct* sub-expressions (repeated subtrees are visited
    once), so it stays linear on expressions with heavy sharing.
    """
    seen: set[Expr] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if type(node) not in _CORE_NODES:
            return False
        stack.extend(node.children())
    return True


def _occurrences_within(expr: Expr, limit: int) -> bool:
    """Whether the tree has at most ``limit`` node occurrences.

    Aborts as soon as the budget is exceeded, so exponentially shared
    trees are rejected in O(limit) instead of being enumerated.
    """
    count = 0
    stack = [expr]
    while stack:
        node = stack.pop()
        count += 1
        if count > limit:
            return False
        stack.extend(node.children())
    return True


def plan_expression(
    expr: Expr, options: PlannerOptions = DEFAULT_OPTIONS
) -> PlanNode:
    """Plan ``expr`` with the given options."""
    return Planner(options).plan(expr)


def dichotomy_line(expr: Expr, schema: Schema) -> str:
    """The Theorem 17 verdict for ``expr``, rendered as a comment line."""
    from repro.core.dichotomy import analyze as run_analysis

    report = run_analysis(expr, schema)
    return (
        f"-- dichotomy: {report.verdict.value} "
        f"({report.classification.reason})"
    )


def explain(
    expr: Expr,
    options: PlannerOptions = DEFAULT_OPTIONS,
    schema: Schema | None = None,
    analyze: bool = False,
    plan: PlanNode | None = None,
) -> str:
    """Render the physical plan for ``expr``.

    With ``analyze=True`` (requires ``schema``) the output is prefixed
    with the Theorem 17 dichotomy verdict from
    :func:`repro.core.dichotomy.analyze` — the planner's authority for
    routing claims.  Pass a pre-built ``plan`` to render exactly the
    plan some caller is about to execute.
    """
    lines: list[str] = []
    if analyze:
        if schema is None:
            raise SchemaError("explain(analyze=True) needs a schema")
        lines.append(dichotomy_line(expr, schema))
    if plan is None:
        plan = plan_expression(expr, options)
    lines.append(plan.explain())
    return "\n".join(lines)
