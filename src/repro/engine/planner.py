"""The cost-aware planner: logical expressions → physical plans.

The planner runs in one of two modes.  Given a
:class:`~repro.engine.stats.StatsCatalog` (how
:meth:`repro.engine.executor.Executor.plan` calls it), operator choice
is **cost-based**: candidate operators are priced by the
:class:`~repro.engine.cost.CostModel` and the cheapest wins, with the
structural choice as the tie-break.  Without statistics (the zero-stats
fallback — :func:`plan_expression`, or ``use_costs=False``) the
decisions below fall back to their purely structural forms, which is
exactly the pre-cost-model behaviour.

Routing rules (documented in ``docs/engine.md``):

1. **Division patterns collapse to direct algorithms.**  The classic
   quadratic RA plan ``π_A(R) − π_A((π_A(R) × S) − R)`` (Proposition 26
   says *every* RA expression for division is quadratic) and the §5
   γ plans (containment and equality) are recognized structurally and
   replaced by a single linear :class:`~repro.engine.plan.DivisionOp`
   running Graefe's hash division by default.  The empty-divisor
   semantics of the source expression is preserved exactly.  Under the
   cost model the direct operator is kept only while its estimated
   cost does not exceed the RA plan's (it never does on the witness
   families — the regression tests pin that no re-quadratification
   sneaks in).
2. **Projected joins become semijoins.**  ``π_p̄(E1 ⋈_θ E2)`` with p̄ on
   one side routes through a semijoin operator — the Corollary 19
   move: the join was only a filter, so the quadratic intermediate is
   never materialized.  Costed mode prices both shapes and keeps the
   semijoin on ties.
3. **Equality atoms select hash operators.**  Joins/semijoins with at
   least one ``=`` atom run as hash joins (index on the right, probe
   from the left); pure θ/cartesian joins fall back to nested loops
   and the planner records the dichotomy risk
   (:func:`repro.core.classify.join_is_safe`, Definition 20 data from
   :mod:`repro.core.joininfo`) in the operator's ``note``.  Costed
   mode compares the two (a nested loop beats building a hash table
   when a side is near-empty).
4. **≥3-way join chains are reordered by estimated size** (costed mode
   only): the chain is flattened into its leaves and equality atoms,
   a greedy smallest-intermediate-first order is built left-deep, and
   the reordered plan — wrapped in a projection restoring the original
   column order — replaces the as-written order when its estimated
   cost is strictly lower.  When the chain is a pure equi-join over
   base relations and its AGM fractional-edge-cover bound
   (:func:`repro.engine.cost.fractional_edge_cover`) beats the best
   binary plan's sound intermediate bound — the cyclic/triangle
   regime where every binary order is provably quadratically worse —
   the whole chain collapses into one worst-case-optimal
   :class:`~repro.engine.plan.MultiwayJoinOp` (gated by
   ``PlannerOptions.use_multiway`` / CLI ``--no-multiway``;
   zero-stats plans always keep the binary chain).
5. **Selections are pushed toward the leaves** first (reusing
   :func:`repro.algebra.optimize.push_selections`), then fused into
   single :class:`~repro.engine.plan.FilterOp` nodes.
6. **Oversized operators are partitioned** (costed mode with a
   ``partition_budget`` only): in a final post-pass over the chosen
   plan — after every cost comparison, so the scatter surcharge never
   influences operator choice — each partitionable operator whose
   sound in-flight upper bound exceeds the budget is wrapped in a
   :class:`~repro.engine.plan.PartitionedOp` sized by
   :func:`repro.engine.partition.planned_partitions`; the executor
   then runs it in budget-bounded batches
   (:mod:`repro.engine.partition`).

:func:`plan_expression` is the entry point; :func:`explain` renders the
chosen plan, optionally with the full Theorem 17 dichotomy verdict from
:func:`repro.core.dichotomy.analyze` and (``costs=True``) the cost
model's per-operator estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.algebra.ast import (
    ConstantTag,
    Difference,
    Expr,
    Join,
    Projection,
    Rel,
    Selection,
    Semijoin,
    Union,
)
from repro.algebra.conditions import Atom, Condition
from repro.core.classify import join_is_safe
from repro.data.schema import Schema
from repro.engine.plan import (
    DivisionOp,
    DifferenceOp,
    FilterOp,
    GroupByOp,
    HashJoinOp,
    HashSemijoinOp,
    MultiwayJoinOp,
    NestedLoopJoinOp,
    NestedLoopSemijoinOp,
    PlanNode,
    ProjectOp,
    ScanOp,
    SortOp,
    TagOp,
    UnionOp,
)
from repro.errors import SchemaError

#: The empty condition, used to recognize cartesian products.
_TRUE = Condition()


@dataclass(frozen=True)
class PlannerOptions:
    """Knobs for the planner.

    ``division_method`` picks the direct algorithm DivisionOp runs
    (``"hash"`` is O(n); ``"sort_merge"``/``"counting"``/
    ``"nested_loop"`` exist for experiments and ablations).
    ``rewrite_divisions`` / ``introduce_semijoins`` / ``push_selections``
    gate the three rewrites so ablations can isolate each one.
    ``use_costs`` gates every cost-based decision (it has no effect
    unless the planner also has a statistics catalog) and
    ``reorder_joins`` gates the ≥3-way join-order search specifically.

    ``use_multiway`` (default on) lets the planner collapse a pure
    equi-join chain over base relations into one worst-case-optimal
    :class:`~repro.engine.plan.MultiwayJoinOp` when the chain's AGM
    fractional-edge-cover bound beats the best binary plan's sound
    intermediate bound.  The collapse is a cost-based decision: it
    needs statistics, so zero-stats planning — and ``use_multiway=
    False``, which skips the code path entirely — keeps the binary
    chain byte-identically.

    ``partition_budget`` is the rows-in-flight cap for partitioned
    execution: when set (and ``use_partitions`` is on and statistics
    are present — sizing needs *sound* bounds), any partitionable
    operator whose estimated in-flight upper bound exceeds the budget
    is wrapped in a :class:`~repro.engine.plan.PartitionedOp` and runs
    in budget-bounded batches.  ``None`` (the default) disables
    partitioning entirely.

    ``max_workers`` enables shard-per-worker parallel execution: when
    > 1 (and statistics are present — the dispatch gate needs *sound*
    bounds), partitionable operators whose certified parallel cost
    beats their serial cost are wrapped in a
    :class:`~repro.engine.plan.ParallelOp` and their batches run on a
    process pool of that many workers.  The default ``1`` keeps
    planning and execution exactly serial.

    ``backend`` selects the storage backend
    (:data:`repro.storage.backend.BACKEND_KINDS`) a
    :class:`~repro.session.Session` or CLI invocation opens for its
    executor.  It is a *construction* knob: the executor's actual
    backend is what the cost model prices (attached backends get the
    cheaper descriptor transport rate in the parallel dispatch gate)
    and what execution reads from; a per-query options override never
    changes the storage mid-session.

    ``replan_threshold`` closes the estimator feedback loop: when set
    (a ratio strictly greater than 1), execution feeds each operator's
    estimated-vs-actual pair into the catalog's persistent
    :class:`~repro.engine.stats.FeedbackLedger`, the cost model
    corrects point estimates by the learned factors, a memoized plan
    is re-planned once any of its operators' correction factors has
    drifted by at least the threshold since the plan was priced, and
    partitioned operators re-pack their *remaining* batches mid-query
    when observed batch output diverges from the priced worst case by
    the same ratio.  ``None`` (the default) freezes plans: estimates
    are never corrected and nothing re-plans.  Feedback requires
    ``use_costs`` — the threshold measures the cost model's error, so
    there is nothing to measure (or re-plan with) structurally.
    """

    division_method: str = "hash"
    rewrite_divisions: bool = True
    introduce_semijoins: bool = True
    push_selections: bool = True
    use_costs: bool = True
    reorder_joins: bool = True
    use_partitions: bool = True
    partition_budget: int | None = None
    max_workers: int = 1
    backend: str = "memory"
    replan_threshold: float | None = None
    use_multiway: bool = True

    def __post_init__(self) -> None:
        # Fail fast: apply_partitioning only runs on plans that contain
        # a partitionable operator, so a bad budget caught there would
        # surface on some queries and pass silently on others.
        if self.partition_budget is not None and self.partition_budget < 1:
            raise SchemaError(
                "partition_budget must be >= 1 row (or None to disable "
                f"partitioning), got {self.partition_budget}"
            )
        if self.max_workers < 1:
            raise SchemaError(
                f"max_workers must be >= 1, got {self.max_workers}"
            )
        from repro.storage.backend import BACKEND_KINDS

        if self.backend not in BACKEND_KINDS:
            raise SchemaError(
                f"unknown storage backend {self.backend!r}; expected "
                f"one of {', '.join(BACKEND_KINDS)}"
            )
        if self.replan_threshold is not None:
            if not self.replan_threshold > 1.0:
                raise SchemaError(
                    "replan_threshold is an error *ratio* and must be "
                    "> 1 (or None to freeze plans), got "
                    f"{self.replan_threshold}"
                )
            if not self.use_costs:
                raise SchemaError(
                    "replan_threshold needs cost-based planning: the "
                    "threshold measures the cost model's estimation "
                    "error, which use_costs=False disables"
                )


DEFAULT_OPTIONS = PlannerOptions()


# ----------------------------------------------------------------------
# Division pattern recognition
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DivisionMatch:
    """A recognized division sub-tree."""

    dividend: Expr
    divisor: Expr
    eq: bool
    empty_divisor: str
    origin: str


def match_classic_division(expr: Expr) -> DivisionMatch | None:
    """Recognize ``π_A(R) − π_A((π_A(R) × S) − R)`` (any sub-exprs R, S).

    The textbook plan built by
    :func:`repro.setjoins.division.classic_division_expr`; on an empty
    divisor it returns all candidates (``R ÷ ∅ = π_A(R)``).
    """
    if not isinstance(expr, Difference):
        return None
    candidates, disqualified = expr.left, expr.right
    if not (
        isinstance(candidates, Projection)
        and candidates.positions == (1,)
        and candidates.child.arity == 2
    ):
        return None
    dividend = candidates.child
    if not (
        isinstance(disqualified, Projection)
        and disqualified.positions == (1,)
        and isinstance(disqualified.child, Difference)
    ):
        return None
    missing = disqualified.child
    if missing.right != dividend:
        return None
    cross = missing.left
    if not (
        isinstance(cross, Join)
        and cross.cond == _TRUE
        and cross.left == candidates
        and cross.right.arity == 1
    ):
        return None
    return DivisionMatch(
        dividend=dividend,
        divisor=cross.right,
        eq=False,
        empty_divisor="all",
        origin="classic RA division plan (quadratic, Prop. 26)",
    )


def _is_count_group(expr: Expr, positions: tuple[int, ...], over: int):
    """Whether ``expr`` is ``γ_{positions, count(over)}(child)``; → child."""
    try:
        from repro.extended.ast import GroupBy
    except ImportError:  # pragma: no cover - extended always ships
        return None
    if not isinstance(expr, GroupBy):
        return None
    if expr.group_positions != positions:
        return None
    if len(expr.aggregates) != 1:
        return None
    aggregate = expr.aggregates[0]
    if aggregate.func != "count" or aggregate.position != over:
        return None
    return expr.child


_B_EQ_C = Condition((Atom(2, "=", 1),))


def match_gamma_containment_division(expr: Expr) -> DivisionMatch | None:
    """Recognize the §5 containment plan
    ``π_A(γ_{A,count}(R ⋈_{2=1} S) ⋈_{2=1} γ_{count}(S))``.

    Returns ∅ on an empty divisor (the documented caveat), which the
    match records as the ``"none"`` policy.
    """
    if not (isinstance(expr, Projection) and expr.positions == (1,)):
        return None
    matched = expr.child
    if not (isinstance(matched, Join) and matched.cond == _B_EQ_C):
        return None
    joined = _is_count_group(matched.left, (1,), 2)
    divisor = _is_count_group(matched.right, (), 1)
    if joined is None or divisor is None:
        return None
    if not (isinstance(joined, Join) and joined.cond == _B_EQ_C):
        return None
    dividend = joined.left
    if dividend.arity != 2 or joined.right != divisor:
        return None
    if divisor.arity != 1:
        return None
    return DivisionMatch(
        dividend=dividend,
        divisor=divisor,
        eq=False,
        empty_divisor="none",
        origin="§5 γ containment-division plan",
    )


def match_gamma_equality_division(expr: Expr) -> DivisionMatch | None:
    """Recognize the §5 equality plan built by
    :func:`repro.extended.division_plan.equality_division_plan`."""
    if not (isinstance(expr, Projection) and expr.positions == (1,)):
        return None
    selected = expr.child
    if not (
        isinstance(selected, Selection)
        and selected.op == "="
        and (selected.i, selected.j) == (4, 5)
    ):
        return None
    with_k = selected.child
    if not (isinstance(with_k, Join) and with_k.cond == _B_EQ_C):
        return None
    per_candidate, divisor_size = with_k.left, with_k.right
    divisor = _is_count_group(divisor_size, (), 1)
    if divisor is None or divisor.arity != 1:
        return None
    if not (
        isinstance(per_candidate, Join)
        and per_candidate.cond == Condition((Atom(1, "=", 1),))
    ):
        return None
    joined = _is_count_group(per_candidate.left, (1,), 2)
    totals = _is_count_group(per_candidate.right, (1,), 2)
    if joined is None or totals is None:
        return None
    if not (isinstance(joined, Join) and joined.cond == _B_EQ_C):
        return None
    dividend = joined.left
    if dividend.arity != 2 or dividend != totals:
        return None
    if joined.right != divisor:
        return None
    return DivisionMatch(
        dividend=dividend,
        divisor=divisor,
        eq=True,
        empty_divisor="none",
        origin="§5 γ equality-division plan",
    )


def match_division(expr: Expr) -> DivisionMatch | None:
    """Try all known division shapes at this node."""
    for matcher in (
        match_classic_division,
        match_gamma_containment_division,
        match_gamma_equality_division,
    ):
        found = matcher(expr)
        if found is not None:
            return found
    return None


# ----------------------------------------------------------------------
# The planner
# ----------------------------------------------------------------------


class Planner:
    """Translate logical expressions into physical plans.

    Planning is memoized per distinct sub-expression: expressions are
    trees whose structurally equal subtrees can repeat (the
    intersection chains of ``small_divisor_expr`` double a subtree per
    level), so an occurrence-by-occurrence walk would be exponential
    while the distinct-node walk is linear — and shared logical
    subtrees come back as the *same* plan node, which the executor then
    computes once.
    """

    #: Occurrence budget for the global selection-pushdown rewrite,
    #: which (unlike planning) walks occurrences, not distinct nodes.
    PUSHDOWN_SIZE_LIMIT = 512

    #: Join chains with more leaves than this keep their written order
    #: (the greedy search is quadratic in the leaf count).
    REORDER_MAX_LEAVES = 8

    def __init__(
        self,
        options: PlannerOptions = DEFAULT_OPTIONS,
        catalog=None,
        cost_model=None,
    ) -> None:
        from repro.engine.cost import CostModel

        self.options = options
        self.catalog = catalog
        #: One shared model per planning session (callers with a
        #: longer-lived model — the executor — pass their own):
        #: estimates of common subtrees are memoized across all
        #: candidate comparisons.
        self.cost_model = (
            cost_model if cost_model is not None else CostModel(catalog)
        )
        self._memo: dict[Expr, PlanNode] = {}
        #: Set while pricing a division rewrite's alternative: the one
        #: node whose division match is suppressed (rewrites below it
        #: stay on, keeping the cost comparison symmetric).
        self._no_division_root: Expr | None = None

    def _costed(self) -> bool:
        """Whether cost-based decisions are in force (stats present)."""
        return self.catalog is not None and self.options.use_costs

    def _cost(self, node: PlanNode) -> float:
        return self.cost_model.estimate(node).cost

    def _apply_partition_budget(self, plan: PlanNode) -> PlanNode:
        """Wrap oversized operators once the whole plan is chosen.

        Partitioning is a *post-pass* (:func:`repro.engine.partition.
        apply_partitioning`), deliberately not part of operator choice:
        wrapping adds the scatter pass to an operator's cost, and
        pricing candidates with that surcharge could flip a comparison
        toward an unpartitionable — hence budget-unbounded —
        alternative.  Sizing needs *sound* in-flight bounds, so without
        statistics (or without a budget) plans are returned untouched.
        """
        budget = self.options.partition_budget
        if (
            budget is None
            or not self.options.use_partitions
            or not self._costed()
        ):
            return plan
        from repro.engine.partition import apply_partitioning

        return apply_partitioning(plan, self.cost_model, budget)

    def _apply_parallelism(self, plan: PlanNode) -> PlanNode:
        """Shard certified-profitable operators once the plan is chosen.

        Like partitioning, a post-pass so the parallel repricing never
        flips an operator choice.  The dispatch gate
        (:func:`repro.engine.cost.parallel_cost_split`) needs sound
        bounds, so without statistics — or with the default
        ``max_workers=1`` — plans are returned untouched and serial
        planning stays byte-identical.
        """
        if self.options.max_workers <= 1 or not self._costed():
            return plan
        from repro.engine.parallel import apply_parallelism

        return apply_parallelism(
            plan, self.cost_model, self.options.max_workers
        )

    def plan(self, expr: Expr) -> PlanNode:
        """Plan a logical expression (RA/SA, optionally with γ/Sort)."""
        if (
            self.options.push_selections
            and _is_core(expr)
            and _occurrences_within(expr, self.PUSHDOWN_SIZE_LIMIT)
        ):
            from repro.algebra.optimize import push_selections

            expr = push_selections(expr)
        return self._apply_parallelism(
            self._apply_partition_budget(self._plan(expr))
        )

    # -- recursive translation -----------------------------------------

    def _plan(self, expr: Expr) -> PlanNode:
        cached = self._memo.get(expr)
        if cached is not None:
            return cached
        planned = self._plan_node(expr)
        self._memo[expr] = planned
        return planned

    def _plan_node(self, expr: Expr) -> PlanNode:
        if self.options.rewrite_divisions and expr != self._no_division_root:
            match = match_division(expr)
            if match is not None:
                return self._division(expr, match)
        if isinstance(expr, Rel):
            return ScanOp(expr)
        if isinstance(expr, Union):
            return UnionOp(self._plan(expr.left), self._plan(expr.right), expr)
        if isinstance(expr, Difference):
            return DifferenceOp(
                self._plan(expr.left), self._plan(expr.right), expr
            )
        if isinstance(expr, Projection):
            return self._projection(expr)
        if isinstance(expr, Selection):
            return self._selection(expr)
        if isinstance(expr, ConstantTag):
            return TagOp(self._plan(expr.child), expr.value, expr)
        if isinstance(expr, Join):
            return self._join(expr, self._plan(expr.left), self._plan(expr.right))
        if isinstance(expr, Semijoin):
            return self._semijoin(
                expr, self._plan(expr.left), self._plan(expr.right), expr.cond
            )
        extended = self._plan_extended(expr)
        if extended is not None:
            return extended
        raise SchemaError(
            f"planner: unknown expression node {type(expr).__name__}"
        )

    def _plan_extended(self, expr: Expr) -> PlanNode | None:
        try:
            from repro.extended.ast import GroupBy, Sort
        except ImportError:  # pragma: no cover - extended always ships
            return None
        if isinstance(expr, GroupBy):
            return GroupByOp(self._plan(expr.child), expr)
        if isinstance(expr, Sort):
            return SortOp(self._plan(expr.child), expr)
        return None

    # -- operator choice ------------------------------------------------

    def _division(self, expr: Expr, match: DivisionMatch) -> PlanNode:
        method = self.options.division_method
        cost = {
            "hash": "O(|R|+|S|)",
            "counting": "O(|R|+|S|)",
            "sort_merge": "O(|R| log |R|)",
            "nested_loop": "O(|A|·|S|)",
        }.get(method, "?")  # DivisionOp rejects unknown methods
        division = DivisionOp(
            dividend=self._plan(match.dividend),
            divisor=self._plan(match.divisor),
            method=method,
            eq=match.eq,
            empty_divisor=match.empty_divisor,
            expr=expr,
            note=f"rewritten from {match.origin}; direct {method} "
            f"division is {cost}",
        )
        if not self._costed():
            return division
        # Price the source RA/γ plan too, suppressing the division
        # match at this node only: nested division patterns inside the
        # alternative keep their rewrites (the comparison stays
        # symmetric), and because the planning memo is shared — the
        # suppression is a field on *this* planner, saved and restored
        # around one direct ``_plan_node`` call — each distinct
        # sub-expression is still planned at most twice, keeping
        # planning linear even for nested division patterns.  Keep the
        # direct operator on ties.
        previous = self._no_division_root
        self._no_division_root = expr
        try:
            structural = self._plan_node(expr)
        finally:
            self._no_division_root = previous
        if self._cost(structural) < self._cost(division):
            return structural
        return division

    def _projection(self, expr: Projection) -> PlanNode:
        child = expr.child
        if self.options.introduce_semijoins and isinstance(child, Join):
            semijoin = self._semijoin_projection(expr, child)
            if semijoin is not None:
                if not self._costed():
                    return semijoin
                direct = ProjectOp(
                    self._plan(child), expr.positions, expr
                )
                if self._cost(direct) < self._cost(semijoin):
                    return direct
                return semijoin
        return ProjectOp(self._plan(child), expr.positions, expr)

    def _semijoin_projection(
        self, expr: Projection, child: Join
    ) -> PlanNode | None:
        """The Corollary 19 candidate: π over a join on one side only."""
        left_arity = child.left.arity
        if all(p <= left_arity for p in expr.positions):
            semijoin = self._semijoin(
                Semijoin(child.left, child.right, child.cond),
                self._plan(child.left),
                self._plan(child.right),
                child.cond,
                note="join used only as a filter (Cor. 19): "
                "semijoin avoids the join's intermediate",
            )
            return ProjectOp(semijoin, expr.positions, expr)
        if all(p > left_arity for p in expr.positions):
            mirrored = child.cond.mirrored()
            semijoin = self._semijoin(
                Semijoin(child.right, child.left, mirrored),
                self._plan(child.right),
                self._plan(child.left),
                mirrored,
                note="join used only as a right-side filter "
                "(Cor. 19): mirrored semijoin",
            )
            remapped = tuple(p - left_arity for p in expr.positions)
            return ProjectOp(semijoin, remapped, expr)
        return None

    def _selection(self, expr: Selection) -> PlanNode:
        # Fuse stacked selections into one FilterOp.
        predicates: list[tuple[str, int, int]] = []
        node: Expr = expr
        while isinstance(node, Selection):
            predicates.append((node.op, node.i, node.j))
            node = node.child
        return FilterOp(self._plan(node), tuple(predicates), expr)

    def _join(self, expr: Join, left: PlanNode, right: PlanNode) -> PlanNode:
        as_written = self._join_operator(expr, left, right, expr.cond)
        best = as_written
        if self._costed() and self.options.reorder_joins:
            reordered = self._reorder_join(expr)
            if reordered is not None and (
                self._cost(reordered) < self._cost(best)
            ):
                best = reordered
        if self._costed() and self.options.use_multiway:
            multiway = self._multiway_join(expr, best)
            if multiway is not None:
                return multiway
        return best

    def _join_operator(
        self, expr: Expr, left: PlanNode, right: PlanNode, cond: Condition
    ) -> PlanNode:
        """Hash vs nested-loop for one join, costed when stats allow."""
        try:
            safe = isinstance(expr, Join) and join_is_safe(expr)
        except SchemaError:
            # Extended (γ) operands: the Definition 20 analysis only
            # reads core RA/SA nodes, so no dichotomy verdict here.
            safe = True
        if cond.by_op("="):
            keys = ",".join(str(a.j) for a in sorted(
                cond.by_op("="), key=lambda a: a.j
            ))
            note = f"equality atoms: hash index on right[{keys}]"
            if isinstance(expr, Join) and not safe:
                note += (
                    "; dichotomy: no side fully constrained — output "
                    "may still be quadratic (Thm. 17)"
                )
            hashed = HashJoinOp(left, right, cond, expr, note=note)
            if not self._costed():
                return hashed
            looped = NestedLoopJoinOp(
                left, right, cond, expr,
                note="equality atoms, but an input is small enough "
                "that a nested loop beats building the hash index "
                "(cost-based)",
            )
            if self._cost(looped) < self._cost(hashed):
                return looped
            return hashed
        note = (
            "no equality atoms: nested loop; dichotomy: quadratic "
            "candidate space (Thm. 17 / Lemma 24)"
            if not safe
            else "no equality atoms: nested loop over a constant side"
        )
        return NestedLoopJoinOp(left, right, cond, expr, note=note)

    # -- cost-based join ordering ---------------------------------------

    def _reorder_join(self, expr: Join) -> PlanNode | None:
        """A greedy smallest-intermediate-first reordering of a chain.

        Flattens the maximal join subtree rooted at ``expr`` into its
        leaves and equality/order atoms (over global column positions),
        rebuilds a left-deep chain greedily — start with the pair of
        smallest estimated join size, then repeatedly absorb the leaf
        with the smallest estimated intermediate, preferring leaves
        connected by at least one atom — and restores the original
        column order with a final projection.  Every intermediate node
        carries a genuine equivalent logical expression, so EXPLAIN
        output stays parseable.  Returns None when the chain has fewer
        than 3 leaves (nothing to reorder) or the greedy order is the
        written one.
        """
        leaves, spans, atoms = _flatten_logical_join(expr)
        count = len(leaves)
        if not 3 <= count <= self.REORDER_MAX_LEAVES:
            return None
        estimates = self.cost_model
        plans = [self._plan(leaf) for leaf in leaves]

        def connected(done: set[int], leaf: int) -> bool:
            for gi, __, gj in atoms:
                li, lj = _leaf_of(spans, gi), _leaf_of(spans, gj)
                if (li == leaf and lj in done) or (lj == leaf and li in done):
                    return True
            return False

        def extend(state, done: set[int], leaf: int):
            """Join ``leaf`` onto the accumulated state.

            Every atom linking ``leaf`` to an already-placed leaf
            becomes a condition atom of the new join (mirrored when the
            atom was written the other way around); atoms to leaves not
            yet placed stay pending for a later step.
            """
            acc_expr, acc_plan, placed = state
            start, __ = spans[leaf]
            cond_atoms = []
            for gi, op, gj in atoms:
                li, lj = _leaf_of(spans, gi), _leaf_of(spans, gj)
                if li in done and lj == leaf:
                    cond_atoms.append(Atom(placed[gi], op, gj - start + 1))
                elif lj in done and li == leaf:
                    cond_atoms.append(
                        Atom(gi - start + 1, op, placed[gj]).mirrored()
                    )
            cond = Condition(tuple(cond_atoms))
            joined_expr = Join(acc_expr, leaves[leaf], cond)
            joined_plan = self._join_operator(
                joined_expr, acc_plan, plans[leaf], cond
            )
            width = acc_expr.arity
            new_placed = dict(placed)
            for column in range(leaves[leaf].arity):
                new_placed[start + column] = width + column + 1
            return joined_expr, joined_plan, new_placed

        def score_of(plan: PlanNode, *tiebreak: int):
            estimate = estimates.estimate(plan)
            return (estimate.rows, estimate.cost) + tiebreak

        # Seed: the cheapest-looking first pair (both orientations).
        best = None
        for i in range(count):
            for j in range(count):
                if i == j:
                    continue
                placed = {
                    spans[i][0] + c: c + 1 for c in range(leaves[i].arity)
                }
                state = extend((leaves[i], plans[i], placed), {i}, j)
                score = score_of(state[1], i, j)
                if best is None or score < best[0]:
                    best = (score, state, [i, j])
        (__, state, order) = best
        placed_leaves = set(order)
        while len(order) < count:
            candidates = [
                leaf
                for leaf in range(count)
                if leaf not in placed_leaves
                and connected(placed_leaves, leaf)
            ] or [leaf for leaf in range(count) if leaf not in placed_leaves]
            chosen = None
            for leaf in candidates:
                extended = extend(state, placed_leaves, leaf)
                score = score_of(extended[1], leaf)
                if chosen is None or score < chosen[0]:
                    chosen = (score, extended, leaf)
            state = chosen[1]
            order.append(chosen[2])
            placed_leaves.add(chosen[2])
        if order == list(range(count)):
            return None
        acc_expr, acc_plan, placed = state
        permutation = tuple(
            placed[column] for column in range(expr.arity)
        )
        restored = Projection(acc_expr, permutation)
        return ProjectOp(
            acc_plan,
            permutation,
            restored,
            note=f"cost-based join order {order} (estimated "
            "intermediates); projection restores the written column "
            "order",
        )

    # -- worst-case-optimal multiway collapse ---------------------------

    def _multiway_join(self, expr: Join, binary: PlanNode) -> PlanNode | None:
        """Collapse an equi-join chain into one generic-join operator.

        Applies when the maximal join subtree at ``expr`` is a pure
        equality join over 3..``REORDER_MAX_LEAVES`` base relations
        (``ScanOp`` leaves — the AGM bound needs exact cardinalities)
        and the chain's fractional-edge-cover bound
        (:func:`repro.engine.cost.fractional_edge_cover`) is strictly
        below the best binary candidate's *peak sound intermediate
        bound* — the quantity the worst-case argument compares: every
        binary plan must materialize its intermediates, while the
        generic join materializes nothing beyond its output, which the
        AGM bound caps.  Returns None (keep the binary plan) whenever
        the shape doesn't qualify, the binary plan has no certified
        intermediate bound to beat, or a partition budget is set that
        the one-shot multiway execution could exceed — binary joins
        can run under :class:`~repro.engine.plan.PartitionedOp`,
        the multiway operator deliberately cannot (this PR).
        """
        leaves, __, atoms = _flatten_logical_join(expr)
        count = len(leaves)
        if not 3 <= count <= self.REORDER_MAX_LEAVES:
            return None
        if not atoms or any(op != "=" for __g, op, __h in atoms):
            return None
        plans = [self._plan(leaf) for leaf in leaves]
        if not all(isinstance(plan, ScanOp) for plan in plans):
            return None
        from repro.engine.cost import _fmt, fractional_edge_cover
        from repro.engine.wcoj import choose_order, variable_layout

        attrs = variable_layout([leaf.arity for leaf in leaves], atoms)
        edges = [frozenset(row) for row in attrs]
        if not all(edges):  # an arity-0 leaf carries no hyperedge
            return None
        cards = [
            float(self.catalog.relation(plan.expr.name).rows)
            for plan in plans
        ]
        agm, cover = fractional_edge_cover(edges, cards)
        peak = self._binary_intermediate_bound(binary)
        if peak is None or not agm < peak:
            return None
        note = (
            f"worst-case-optimal: AGM bound {_fmt(agm)} (fractional "
            f"cover {'/'.join(_fmt(x) for x in cover)}) beats the "
            f"binary plan's peak intermediate bound {_fmt(peak)}"
        )
        budget = self.options.partition_budget
        if budget is not None and self.options.use_partitions:
            if agm + sum(cards) > budget:
                # The binary chain can run partitioned under the
                # budget; the one-shot generic join cannot.
                return None
            note += (
                "; one-shot only: multiway join refuses PartitionedOp "
                "fusion"
            )
        return MultiwayJoinOp(
            tuple(plans),
            attrs,
            choose_order(attrs, cards),
            agm,
            expr,
            note=note,
        )

    def _binary_intermediate_bound(self, plan: PlanNode) -> float | None:
        """Peak sound row bound over a binary plan's join operators.

        The multiway gate's comparison target: the largest certified
        ``upper`` any join node in ``plan`` may materialize.  Returns
        None — the gate then keeps the binary plan — when any join
        node's bound is unsound or infinite, because "AGM beats an
        uncertified guess" is not a certificate.
        """
        peak = None
        stack = [plan]
        while stack:
            node = stack.pop()
            stack.extend(node.children())
            if isinstance(node, (HashJoinOp, NestedLoopJoinOp)):
                estimate = self.cost_model.estimate(node)
                if not estimate.sound or not math.isfinite(estimate.upper):
                    return None
                if peak is None or estimate.upper > peak:
                    peak = estimate.upper
        return peak

    def _semijoin(
        self,
        expr: Expr,
        left: PlanNode,
        right: PlanNode,
        cond: Condition,
        note: str = "",
    ) -> PlanNode:
        if cond.by_op("="):
            extra = "hash semijoin (linear, SA= fragment)"
            merged = f"{note}; {extra}" if note else extra
            return HashSemijoinOp(left, right, cond, expr, note=merged)
        extra = "nested-loop semijoin (linear output, |L|·|R| probes)"
        merged = f"{note}; {extra}" if note else extra
        return NestedLoopSemijoinOp(left, right, cond, expr, note=merged)


def _flatten_logical_join(
    expr: Join,
) -> tuple[list[Expr], list[tuple[int, int]], list[tuple[int, str, int]]]:
    """Flatten a maximal logical join subtree into leaves/spans/atoms.

    Thin wrapper over :func:`repro.engine.cost.flatten_join_tree` (the
    same flattener the AGM bound uses on physical operators, so the
    global-column arithmetic cannot drift apart); any non-``Join``
    node is a leaf.
    """
    from repro.engine.cost import flatten_join_tree

    return flatten_join_tree(expr, (Join,))


def _leaf_of(spans: list[tuple[int, int]], column: int) -> int:
    """The leaf index owning a global column."""
    for index, (start, arity) in enumerate(spans):
        if start <= column < start + arity:
            return index
    raise SchemaError(f"global column {column} outside all leaf spans")


_CORE_NODES = (
    Rel,
    Union,
    Difference,
    Projection,
    Selection,
    ConstantTag,
    Join,
    Semijoin,
)


def _is_core(expr: Expr) -> bool:
    """Whether the expression uses only core RA/SA nodes.

    Walks *distinct* sub-expressions (repeated subtrees are visited
    once), so it stays linear on expressions with heavy sharing.
    """
    seen: set[Expr] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if type(node) not in _CORE_NODES:
            return False
        stack.extend(node.children())
    return True


def _occurrences_within(expr: Expr, limit: int) -> bool:
    """Whether the tree has at most ``limit`` node occurrences.

    Aborts as soon as the budget is exceeded, so exponentially shared
    trees are rejected in O(limit) instead of being enumerated.
    """
    count = 0
    stack = [expr]
    while stack:
        node = stack.pop()
        count += 1
        if count > limit:
            return False
        stack.extend(node.children())
    return True


def plan_expression(
    expr: Expr, options: PlannerOptions = DEFAULT_OPTIONS
) -> PlanNode:
    """Plan ``expr`` with the given options."""
    return Planner(options).plan(expr)


def dichotomy_line(expr: Expr, schema: Schema) -> str:
    """The Theorem 17 verdict for ``expr``, rendered as a comment line."""
    from repro.core.dichotomy import analyze as run_analysis

    report = run_analysis(expr, schema)
    return (
        f"-- dichotomy: {report.verdict.value} "
        f"({report.classification.reason})"
    )


def explain(
    expr: Expr,
    options: PlannerOptions = DEFAULT_OPTIONS,
    schema: Schema | None = None,
    analyze: bool = False,
    plan: PlanNode | None = None,
    costs: bool = False,
    catalog=None,
    cost_model=None,
) -> str:
    """Render the physical plan for ``expr``.

    With ``analyze=True`` (requires ``schema``) the output is prefixed
    with the Theorem 17 dichotomy verdict from
    :func:`repro.core.dichotomy.analyze` — the planner's authority for
    routing claims.  Pass a pre-built ``plan`` to render exactly the
    plan some caller is about to execute.

    With ``costs=True`` every operator line carries the cost model's
    estimate — ``{~rows=<point> ub=<sound upper bound> cost=<work>}``
    — computed from ``catalog`` statistics when given (how the CLI's
    ``explain --costs -d db.json`` calls it) and from the zero-stats
    default assumptions otherwise (``ub`` renders as ``?`` then:
    nothing is certified without statistics).  Pass the ``cost_model``
    that priced the plan (e.g. ``executor.cost_model``) to reuse its
    memoized estimates instead of re-estimating.
    """
    lines: list[str] = []
    if analyze:
        if schema is None:
            raise SchemaError("explain(analyze=True) needs a schema")
        lines.append(dichotomy_line(expr, schema))
    if plan is None:
        if catalog is not None:
            plan = Planner(options, catalog, cost_model).plan(expr)
        else:
            plan = plan_expression(expr, options)
    annotate = None
    if costs:
        from repro.engine.cost import CostModel

        model = cost_model if cost_model is not None else CostModel(catalog)
        annotate = lambda node: model.estimate(node).render()  # noqa: E731
    lines.append(plan.explain(annotate=annotate))
    return "\n".join(lines)
