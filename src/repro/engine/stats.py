"""Per-relation statistics backing the cost model.

The planner's structural rules (dichotomy verdicts, division pattern
matches) say which plans *can* blow up; statistics say how big this
particular database actually is, so plan choice can compare estimated
costs instead of pattern-matching alone (``docs/engine.md``).

Statistics are exact — relations are in-memory frozensets, so one pass
per relation yields the true cardinality, true per-column distinct
counts, and a true most-common-value sketch.  That exactness is what
makes the estimator's *upper bounds* sound (``repro.engine.cost``): the
bounds are theorems about the data, not guesses, and the property tests
in ``tests/test_engine_cost.py`` hold them to that.

Collection is lazy and cached per relation in a :class:`StatsCatalog`,
which lives alongside the hash-index cache on each
:class:`~repro.engine.executor.Executor`.  A catalog entry remembers the
frozenset it profiled; if the database hands back a different object for
the same name (contents changed under the same handle), the entry is
recomputed — the statistics analogue of the executor's version token.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from repro.data.database import Database, Row
from repro.data.universe import Value

#: How many most-common values each column sketch retains.
MCV_SIZE = 8


@dataclass(frozen=True)
class ColumnStats:
    """Exact statistics for one column of a relation.

    ``distinct`` is the number of distinct values, ``max_freq`` the
    multiplicity of the most frequent value (0 for an empty relation),
    and ``mcv`` the ``(value, count)`` pairs of the up-to-
    :data:`MCV_SIZE` most common values, most frequent first.
    """

    distinct: int
    max_freq: int
    mcv: tuple[tuple[Value, int], ...]

    def frequency(self, value: Value) -> int | None:
        """The exact count for ``value`` if the sketch retained it."""
        for candidate, count in self.mcv:
            if candidate == value:
                return count
        return None


@dataclass(frozen=True)
class RelationStats:
    """Exact statistics for one stored relation."""

    rows: int
    columns: tuple[ColumnStats, ...]

    @property
    def arity(self) -> int:
        return len(self.columns)

    def distinct(self, position: int) -> int:
        """Distinct count for a 1-based column position."""
        return self.columns[position - 1].distinct

    def max_freq(self, position: int) -> int:
        """Most-common-value multiplicity for a 1-based position."""
        return self.columns[position - 1].max_freq


def relation_stats(
    rows: Iterable[Row], arity: int, mcv_size: int = MCV_SIZE
) -> RelationStats:
    """Profile a relation in one pass: cardinality + per-column sketches."""
    counters: list[Counter] = [Counter() for _ in range(arity)]
    cardinality = 0
    for row in rows:
        cardinality += 1
        for counter, value in zip(counters, row):
            counter[value] += 1
    columns = tuple(
        ColumnStats(
            distinct=len(counter),
            max_freq=max(counter.values(), default=0),
            mcv=tuple(counter.most_common(mcv_size)),
        )
        for counter in counters
    )
    return RelationStats(rows=cardinality, columns=columns)


class StatsCatalog:
    """Lazy, cached statistics for one database.

    ``relation(name)`` profiles a relation on first use and caches the
    result keyed by the frozenset object it profiled, so a swapped
    relation (same name, different contents) is re-profiled instead of
    served stale.  :meth:`invalidate` drops everything — the executor
    calls it when the database's version token changes.
    """

    def __init__(self, db: Database) -> None:
        self.db = db
        self._cache: dict[str, tuple[frozenset[Row], RelationStats]] = {}

    def relation(self, name: str) -> RelationStats:
        current = self.db[name]
        cached = self._cache.get(name)
        if cached is not None and cached[0] is current:
            return cached[1]
        profiled = relation_stats(current, self.db.schema[name])
        self._cache[name] = (current, profiled)
        return profiled

    def invalidate(self) -> None:
        self._cache.clear()

    def profiled(self) -> tuple[str, ...]:
        """The relation names profiled so far (collection is lazy)."""
        return tuple(self._cache)

    def __len__(self) -> int:
        return len(self._cache)
