"""Per-relation statistics backing the cost model.

The planner's structural rules (dichotomy verdicts, division pattern
matches) say which plans *can* blow up; statistics say how big this
particular database actually is, so plan choice can compare estimated
costs instead of pattern-matching alone (``docs/engine.md``).

Statistics are exact — relations are in-memory frozensets, so one pass
per relation yields the true cardinality, true per-column distinct
counts, and a true most-common-value sketch.  That exactness is what
makes the estimator's *upper bounds* sound (``repro.engine.cost``): the
bounds are theorems about the data, not guesses, and the property tests
in ``tests/test_engine_cost.py`` hold them to that.

Collection is lazy and cached per relation in a :class:`StatsCatalog`,
which lives alongside the hash-index cache on each
:class:`~repro.engine.executor.Executor`.  A catalog entry remembers the
**version token** current when it was profiled; if the token has moved
(contents changed under the same handle) the entry is recomputed — the
same change signal the executor's other caches key on.  Per-read-decode
backends (mmap spills decode a fresh frozenset on every read) are why
the token, not object identity, must be the key: a fresh-but-equal
frozenset per read would otherwise re-profile O(n) on every access.

The catalog also carries the :class:`FeedbackLedger` — the persistent
estimator-error record closing the loop from execution back into
planning (``docs/engine.md`` § Adaptive feedback).  The ledger is keyed
by *(base relations, operator shape)*, not by plan-node identity, so it
deliberately **survives** :meth:`StatsCatalog.invalidate`: statistics
describe contents and go stale with them, but estimator *model* error
(e.g. correlation the ``1/max(d)`` join selectivity cannot see) is a
property of the workload and stays informative across mutations.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from repro.data.database import Database, Row
from repro.data.universe import Value

#: How many most-common values each column sketch retains.
MCV_SIZE = 8

#: Geometric smoothing weight for ledger updates: each new observation
#: moves the stored correction factor this fraction of the way (in log
#: space) toward the observed actual/estimated ratio.  1.0 would adopt
#: each observation outright (fast but jumpy on noisy operators); 0.5
#: converges geometrically while one outlier run cannot flip a plan.
FEEDBACK_SMOOTHING = 0.5


@dataclass(frozen=True)
class ColumnStats:
    """Exact statistics for one column of a relation.

    ``distinct`` is the number of distinct values, ``max_freq`` the
    multiplicity of the most frequent value (0 for an empty relation),
    and ``mcv`` the ``(value, count)`` pairs of the up-to-
    :data:`MCV_SIZE` most common values, most frequent first.
    """

    distinct: int
    max_freq: int
    mcv: tuple[tuple[Value, int], ...]

    def frequency(self, value: Value) -> int | None:
        """The exact count for ``value`` if the sketch retained it."""
        for candidate, count in self.mcv:
            if candidate == value:
                return count
        return None


@dataclass(frozen=True)
class RelationStats:
    """Exact statistics for one stored relation."""

    rows: int
    columns: tuple[ColumnStats, ...]

    @property
    def arity(self) -> int:
        return len(self.columns)

    def distinct(self, position: int) -> int:
        """Distinct count for a 1-based column position."""
        return self.columns[position - 1].distinct

    def max_freq(self, position: int) -> int:
        """Most-common-value multiplicity for a 1-based position."""
        return self.columns[position - 1].max_freq


def relation_stats(
    rows: Iterable[Row], arity: int, mcv_size: int = MCV_SIZE
) -> RelationStats:
    """Profile a relation in one pass: cardinality + per-column sketches."""
    counters: list[Counter] = [Counter() for _ in range(arity)]
    cardinality = 0
    for row in rows:
        cardinality += 1
        for counter, value in zip(counters, row):
            counter[value] += 1
    columns = tuple(
        ColumnStats(
            distinct=len(counter),
            max_freq=max(counter.values(), default=0),
            mcv=tuple(counter.most_common(mcv_size)),
        )
        for counter in counters
    )
    return RelationStats(rows=cardinality, columns=columns)


class StatsCatalog:
    """Lazy, cached statistics for one database.

    ``relation(name)`` profiles a relation on first use and caches the
    result keyed by the **version token** current at profile time, so a
    swapped relation (same name, different contents) is re-profiled
    instead of served stale — and an *unchanged* relation is never
    re-profiled just because the backend decoded a fresh-but-equal
    frozenset for the read (the mmap backend does, on every read).
    When a ``backend`` is given, rows are read through it, so the
    profile describes exactly the snapshot scans will execute against.
    :meth:`invalidate` drops the statistics — the executor calls it
    when the version token changes — but **not** :attr:`feedback`: the
    estimator-error ledger describes the workload, not the contents.
    """

    def __init__(self, db: Database, backend=None) -> None:
        self.db = db
        #: Optional :class:`repro.storage.backend.Backend` rows and
        #: tokens are read through (None → the database handle itself).
        self.backend = backend
        self._cache: dict[str, tuple[int, RelationStats]] = {}
        #: Profiling passes actually run (the mmap regression test in
        #: ``tests/test_feedback.py`` counts these across reads).
        self.profiles = 0
        #: The persistent estimator-error ledger (survives invalidate).
        self.feedback = FeedbackLedger()

    def _token(self) -> int:
        if self.backend is not None:
            return self.backend.version_token()
        return self.db.version_token()

    def _rows(self, name: str) -> frozenset[Row]:
        if self.backend is not None:
            return self.backend.rows(name)
        return self.db[name]

    def relation(self, name: str) -> RelationStats:
        token = self._token()
        cached = self._cache.get(name)
        if cached is not None and cached[0] == token:
            return cached[1]
        profiled = relation_stats(self._rows(name), self.db.schema[name])
        self.profiles += 1
        self._cache[name] = (token, profiled)
        return profiled

    def invalidate(self) -> None:
        self._cache.clear()

    def profiled(self) -> tuple[str, ...]:
        """The relation names profiled so far (collection is lazy)."""
        return tuple(self._cache)

    def __len__(self) -> int:
        return len(self._cache)


# ----------------------------------------------------------------------
# The estimator-error feedback ledger
# ----------------------------------------------------------------------


@dataclass
class FeedbackEntry:
    """Accumulated estimator error for one (relations, shape) key.

    ``factor`` is the smoothed multiplicative correction — multiply the
    model's raw point estimate by it to land near observed actuals.
    ``last_estimated``/``last_actual`` keep the most recent raw pair
    for reports; ``observations`` counts how many runs fed the entry.
    """

    factor: float
    observations: int
    last_estimated: float
    last_actual: int

    def error(self) -> float:
        """Symmetric error ratio: how far off the raw estimate is, ≥ 1."""
        if self.factor <= 0.0:
            return math.inf
        return max(self.factor, 1.0 / self.factor)


class FeedbackLedger:
    """Persistent estimator error per (base relations, operator shape).

    Fed by :meth:`repro.engine.executor.Executor.execute` from each
    run's estimated-vs-actual pairs (cache hits execute zero operators
    and feed nothing — an ``actual=0`` against a real estimate would
    poison the ledger).  Read by the cost model to correct point
    estimates (never the sound upper bounds — corrections are clamped
    by :class:`~repro.engine.cost.Estimate`'s ``rows ≤ upper``
    invariant) and by the executor's re-plan trigger, which compares
    each memoized plan's snapshot of factors against the current ones.

    Keys come from :func:`feedback_key`: the sorted base-relation names
    under the operator plus the operator's label (condition included),
    so structurally identical operators over the same relations share
    one entry across distinct plans, sessions of the same catalog, and
    version-token movements.

    ``revision`` increments on every record — a cheap "has anything new
    been learned" signal for plan-staleness checks.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple, FeedbackEntry] = {}
        self.revision = 0

    def record(self, key: tuple, estimated: float, actual: int) -> None:
        """Fold one estimated-vs-actual observation into the ledger.

        ``estimated`` must be the model's *raw* (uncorrected) point
        estimate, so the stored factor converges to the true ratio
        rather than compounding its own corrections.  The ``+1``
        Laplace shift keeps zero rows on either side finite.
        """
        target = (actual + 1.0) / (max(estimated, 0.0) + 1.0)
        entry = self._entries.get(key)
        if entry is None:
            self._entries[key] = FeedbackEntry(
                factor=target,
                observations=1,
                last_estimated=estimated,
                last_actual=actual,
            )
        else:
            smoothing = FEEDBACK_SMOOTHING
            entry.factor = (
                entry.factor ** (1.0 - smoothing) * target**smoothing
            )
            entry.observations += 1
            entry.last_estimated = estimated
            entry.last_actual = actual
        self.revision += 1

    def factor(self, key: tuple) -> float | None:
        """The correction factor for ``key``, or None if never fed."""
        entry = self._entries.get(key)
        return entry.factor if entry is not None else None

    def error(self, key: tuple) -> float:
        """Symmetric observed error for ``key`` (1.0 when unknown)."""
        entry = self._entries.get(key)
        return entry.error() if entry is not None else 1.0

    def entries(self) -> dict[tuple, FeedbackEntry]:
        return dict(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def report(self) -> str:
        """Human-readable ledger dump (``explain --feedback`` output)."""
        if not self._entries:
            return "feedback ledger  : empty (no executions recorded)"
        lines = ["feedback ledger  :"]
        ordered = sorted(
            self._entries.items(),
            key=lambda kv: -kv[1].error(),
        )
        for (relations, shape), entry in ordered:
            lines.append(
                f"  {','.join(relations)} {shape}: "
                f"factor={entry.factor:.3g} "
                f"error={entry.error():.3g} "
                f"n={entry.observations} "
                f"(last est={entry.last_estimated:.3g} "
                f"actual={entry.last_actual})"
            )
        return "\n".join(lines)


def feedback_key(node) -> tuple | None:
    """The ledger key for a plan node, or None if the node is not fed.

    ``(sorted base-relation names in the subtree, operator label)`` for
    the estimated operators whose errors drive plan choice — joins,
    semijoins, and division.  Partition/parallel wrappers are unwrapped
    to their inner operator, so a partitioned run feeds the same entry
    the one-shot operator would.  Scans are excluded (their statistics
    are exact; estimate==actual pairs would only dilute the ledger) and
    so are the cheap structural operators whose estimates never flip a
    plan on their own.  Multiway joins are deliberately excluded too:
    their gate compares *sound* AGM bounds (which feedback corrections
    never alter), and their label embeds the data-dependent AGM figure,
    so a ledger entry would never generalize across contents versions.
    """
    from repro.engine.plan import (
        DivisionOp,
        HashJoinOp,
        HashSemijoinOp,
        NestedLoopJoinOp,
        NestedLoopSemijoinOp,
        ParallelOp,
        PartitionedOp,
        ScanOp,
    )

    while isinstance(node, (PartitionedOp, ParallelOp)):
        node = node.inner
    if not isinstance(
        node,
        (
            HashJoinOp,
            NestedLoopJoinOp,
            HashSemijoinOp,
            NestedLoopSemijoinOp,
            DivisionOp,
        ),
    ):
        return None
    names: set[str] = set()
    seen: set[int] = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        if isinstance(current, ScanOp):
            names.add(current.expr.name)
        else:
            stack.extend(current.children())
    return (tuple(sorted(names)), node.label())
