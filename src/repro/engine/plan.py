"""Physical query plans: the operator nodes the executor runs.

The logical algebra (:mod:`repro.algebra.ast`) says *what* to compute;
a physical plan says *how*.  One logical node can map to several
physical operators — a ``Join`` becomes a :class:`HashJoinOp` when its
condition has equality atoms and a :class:`NestedLoopJoinOp` otherwise,
and a whole logical sub-tree matching a division pattern collapses into
a single :class:`DivisionOp` backed by the linear algorithms of
:mod:`repro.setjoins.division` (Graefe's "four algorithms" framing).

Every node carries

* ``logical`` — the logical expression the node computes, so plans stay
  auditable: ``explain()`` renders each operator next to the parseable
  ASCII form of its logical expression (``repro.algebra.parser`` reads
  it back; property-tested in ``tests/test_engine_explain.py``);
* ``note`` — the planner's routing rationale (dichotomy verdicts, cost
  reasoning), free-form text that never affects execution.

Nodes are frozen dataclasses, so structurally equal sub-plans hash
equally and the executor memoizes them exactly like the logical
evaluator memoizes sub-expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.algebra.ast import Expr
from repro.algebra.conditions import Condition
from repro.data.universe import Value
from repro.errors import ArityError, SchemaError

#: Division algorithms a :class:`DivisionOp` may name (the zoo of
#: :mod:`repro.setjoins.division`; ``eq`` variants must exist too).
DIVISION_METHODS = ("hash", "sort_merge", "counting", "nested_loop")

#: Empty-divisor policies: the classic RA plan returns all candidates
#: (``R ÷ ∅ = π_A(R)``) while the §5 γ plans return ∅ (the documented
#: SQL-folklore caveat).  The planner records which semantics the
#: *source expression* has, so the rewrite stays an exact equivalence.
EMPTY_DIVISOR_POLICIES = ("all", "none")


@dataclass(frozen=True)
class PlanNode:
    """Base class of all physical operators."""

    def __post_init__(self) -> None:  # pragma: no cover - abstract
        raise SchemaError("PlanNode is abstract; use a concrete operator")

    @property
    def logical(self) -> Expr:
        raise NotImplementedError

    @property
    def arity(self) -> int:
        return self.logical.arity

    def children(self) -> tuple["PlanNode", ...]:
        raise NotImplementedError

    def label(self) -> str:
        """The operator name with its arguments, e.g. ``HashJoin[2=1]``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Traversal / rendering
    # ------------------------------------------------------------------

    def nodes(self):
        """All distinct plan nodes in post-order (self last).

        Distinct by identity: the planner memoizes per distinct
        logical sub-expression, so shared logical subtrees come back
        as the *same* node object and are yielded once — the walk is
        linear in the plan DAG, not in its unfolded tree (exponential
        for the doubling shapes of ``small_divisor_expr``), mirroring
        the executor's and the cost model's per-distinct-node memos.
        """
        return self._nodes(set())

    def _nodes(self, seen: set[int]):
        if id(self) in seen:
            return
        seen.add(id(self))
        for child in self.children():
            yield from child._nodes(seen)
        yield self

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children())

    def fingerprint(self) -> str:
        """A stable digest of what this plan *computes*.

        Two plans with equal fingerprints produce equal results against
        the same relation contents: the digest covers each operator's
        :meth:`label` — which renders every execution-relevant
        parameter (scanned relation, key/condition atoms, projection
        positions, division method and empty-divisor policy, grouping
        spec) — and the child fingerprints, but deliberately *not* the
        planner's ``note`` rationale or the ``logical`` source
        expression.  Distinct logical expressions that plan to the same
        physical shape (e.g. ``π₁(R ⋈ S)`` and ``π₁(R ⋉ S)`` after the
        Corollary 19 rewrite) therefore share a fingerprint, which is
        what lets the session result cache serve structurally shared
        queries from one entry.  Keyed caches must pair the fingerprint
        with a :meth:`~repro.data.database.Database.version_token` —
        the fingerprint identifies the computation, the token the
        contents it ran against.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            import hashlib

            digest = hashlib.sha256()
            digest.update(self.label().encode())
            for child in self.children():
                digest.update(b"(")
                digest.update(child.fingerprint().encode())
                digest.update(b")")
            cached = digest.hexdigest()[:32]
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def explain(self, indent: str = "", annotate=None) -> str:
        """EXPLAIN-style rendering: one line per operator.

        Format per line::

            <indent><Label> /<arity>< {annotation}><  -- note>  :: <ascii logical>

        The text after ``' :: '`` is the parseable ASCII syntax of the
        node's logical expression (when the logical algebra can print
        it; extended γ/sort nodes render but do not parse).  Pass
        ``annotate``, a callable mapping a node to extra text (e.g. the
        cost model's per-operator estimates), to enrich each line; the
        text is inserted before the note and must not contain
        ``' :: '`` so the logical tail stays machine-splittable.
        """
        from repro.algebra.printer import to_ascii

        note = getattr(self, "note", "")
        extra = f" {{{annotate(self)}}}" if annotate is not None else ""
        suffix = f"  -- {note}" if note else ""
        line = (
            f"{indent}{self.label()} /{self.arity}{extra}{suffix}"
            f"  :: {to_ascii(self.logical)}"
        )
        lines = [line]
        for child in self.children():
            lines.append(child.explain(indent + "  ", annotate))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.explain()


@dataclass(frozen=True)
class ScanOp(PlanNode):
    """A full scan of a stored relation."""

    expr: Expr  # a Rel node
    note: str = ""

    def __post_init__(self) -> None:
        from repro.algebra.ast import Rel

        if not isinstance(self.expr, Rel):
            raise SchemaError("ScanOp needs a Rel logical node")

    @property
    def logical(self) -> Expr:
        return self.expr

    def children(self) -> tuple[PlanNode, ...]:
        return ()

    def label(self) -> str:
        return f"Scan {self.expr.name}"


@dataclass(frozen=True)
class UnionOp(PlanNode):
    left: PlanNode
    right: PlanNode
    expr: Expr
    note: str = ""

    def __post_init__(self) -> None:
        if self.left.arity != self.right.arity:
            raise ArityError("union operands must have equal arity")

    @property
    def logical(self) -> Expr:
        return self.expr

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return "Union"


@dataclass(frozen=True)
class DifferenceOp(PlanNode):
    left: PlanNode
    right: PlanNode
    expr: Expr
    note: str = ""

    def __post_init__(self) -> None:
        if self.left.arity != self.right.arity:
            raise ArityError("difference operands must have equal arity")

    @property
    def logical(self) -> Expr:
        return self.expr

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return "Difference"


@dataclass(frozen=True)
class ProjectOp(PlanNode):
    child: PlanNode
    positions: tuple[int, ...]
    expr: Expr
    note: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "positions", tuple(self.positions))
        for position in self.positions:
            if position < 1 or position > self.child.arity:
                raise SchemaError(
                    f"projection position {position} out of range "
                    f"1..{self.child.arity}"
                )

    @property
    def logical(self) -> Expr:
        return self.expr

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Project[{','.join(str(p) for p in self.positions)}]"


@dataclass(frozen=True)
class FilterOp(PlanNode):
    """One or more fused selection predicates ``(op, i, j)``."""

    child: PlanNode
    predicates: tuple[tuple[str, int, int], ...]
    expr: Expr
    note: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "predicates", tuple(self.predicates))
        if not self.predicates:
            raise SchemaError("FilterOp needs at least one predicate")
        for op, i, j in self.predicates:
            if op not in ("=", "<"):
                raise SchemaError(f"unknown filter comparison {op!r}")
            for position in (i, j):
                if position < 1 or position > self.child.arity:
                    raise SchemaError(
                        f"filter position {position} out of range "
                        f"1..{self.child.arity}"
                    )

    @property
    def logical(self) -> Expr:
        return self.expr

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        rendered = ",".join(f"{i}{op}{j}" for op, i, j in self.predicates)
        return f"Filter[{rendered}]"

    def holds(self, row: tuple[Value, ...]) -> bool:
        for op, i, j in self.predicates:
            a, b = row[i - 1], row[j - 1]
            if not (a == b if op == "=" else a < b):
                return False
        return True


@dataclass(frozen=True)
class TagOp(PlanNode):
    child: PlanNode
    value: Value
    expr: Expr
    note: str = ""

    def __post_init__(self) -> None:
        pass  # the base raises; any constructed TagOp is well-formed

    @property
    def logical(self) -> Expr:
        return self.expr

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Tag[{self.value!r}]"


@dataclass(frozen=True)
class HashJoinOp(PlanNode):
    """θ-join probing a hash index on the right operand's equality keys."""

    left: PlanNode
    right: PlanNode
    cond: Condition
    expr: Expr
    note: str = ""

    def __post_init__(self) -> None:
        if not self.cond.by_op("="):
            raise SchemaError(
                "HashJoinOp needs at least one equality atom; use "
                "NestedLoopJoinOp for pure θ/cartesian joins"
            )
        self.cond.validate(self.left.arity, self.right.arity)

    @property
    def logical(self) -> Expr:
        return self.expr

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return f"HashJoin[{self.cond}]"


@dataclass(frozen=True)
class NestedLoopJoinOp(PlanNode):
    """θ-join by candidate-pair enumeration (cartesian when θ is TRUE)."""

    left: PlanNode
    right: PlanNode
    cond: Condition
    expr: Expr
    note: str = ""

    def __post_init__(self) -> None:
        self.cond.validate(self.left.arity, self.right.arity)

    @property
    def logical(self) -> Expr:
        return self.expr

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return f"NestedLoopJoin[{self.cond}]"


@dataclass(frozen=True)
class HashSemijoinOp(PlanNode):
    """``E1 ⋉_θ E2`` probing a hash index on the right equality keys."""

    left: PlanNode
    right: PlanNode
    cond: Condition
    expr: Expr
    note: str = ""

    def __post_init__(self) -> None:
        if not self.cond.by_op("="):
            raise SchemaError(
                "HashSemijoinOp needs at least one equality atom"
            )
        self.cond.validate(self.left.arity, self.right.arity)

    @property
    def logical(self) -> Expr:
        return self.expr

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return f"HashSemijoin[{self.cond}]"


@dataclass(frozen=True)
class NestedLoopSemijoinOp(PlanNode):
    left: PlanNode
    right: PlanNode
    cond: Condition
    expr: Expr
    note: str = ""

    def __post_init__(self) -> None:
        self.cond.validate(self.left.arity, self.right.arity)

    @property
    def logical(self) -> Expr:
        return self.expr

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return f"NestedLoopSemijoin[{self.cond}]"


@dataclass(frozen=True)
class DivisionOp(PlanNode):
    """Direct relational division ``dividend(A,B) ÷ divisor(B)``.

    Replaces a whole logical sub-tree (the classic quadratic RA plan or
    a §5 γ plan) with one linear operator from the algorithm zoo.  The
    ``method`` names the algorithm (:data:`DIVISION_METHODS`), ``eq``
    selects equality-division, and ``empty_divisor`` records the source
    expression's empty-divisor semantics so the rewrite is exact.
    """

    dividend: PlanNode
    divisor: PlanNode
    method: str
    eq: bool
    empty_divisor: str
    expr: Expr
    note: str = ""

    def __post_init__(self) -> None:
        if self.method not in DIVISION_METHODS:
            raise SchemaError(
                f"unknown division method {self.method!r}; expected one "
                f"of {DIVISION_METHODS}"
            )
        if self.empty_divisor not in EMPTY_DIVISOR_POLICIES:
            raise SchemaError(
                f"unknown empty-divisor policy {self.empty_divisor!r}"
            )
        if self.dividend.arity != 2 or self.divisor.arity != 1:
            raise ArityError("DivisionOp needs dividend/2 and divisor/1")

    @property
    def logical(self) -> Expr:
        return self.expr

    def children(self) -> tuple[PlanNode, ...]:
        return (self.dividend, self.divisor)

    def label(self) -> str:
        kind = "eq" if self.eq else "contains"
        return f"Division[{self.method},{kind},empty={self.empty_divisor}]"


@dataclass(frozen=True)
class MultiwayJoinOp(PlanNode):
    """Worst-case-optimal k-way equi-join (generic join, see
    :mod:`repro.engine.wcoj`).

    Joins all ``relations`` at once, variable by variable, instead of
    two at a time: ``attrs[k][c]`` is the join-variable id of input
    ``k``'s column ``c`` (variables are the equivalence classes of
    equated columns across the collapsed binary chain) and ``order``
    is the variable elimination order.  ``agm`` records the
    fractional-edge-cover (AGM) output bound the planner certified
    when collapsing — the figure the operator's materialization is
    bounded by, rendered in the label for ``explain``.

    Output columns are the concatenation of the input columns in
    written order, exactly what the collapsed binary join tree would
    emit, so the node is a drop-in replacement for the chain.

    Deliberately **not** partitionable: the generic join never
    materializes an intermediate to batch — its working set is inputs
    plus certified output — so this PR runs it one-shot only and
    :func:`~repro.engine.partition.apply_partitioning` annotates
    instead of wrapping (the planner refuses the collapse outright
    when the certified working set would exceed a partition budget).
    """

    relations: tuple[PlanNode, ...]
    attrs: tuple[tuple[int, ...], ...]
    order: tuple[int, ...]
    agm: float
    expr: Expr
    note: str = ""

    def __post_init__(self) -> None:
        if len(self.relations) < 2:
            raise SchemaError("MultiwayJoinOp needs at least two inputs")
        if len(self.attrs) != len(self.relations):
            raise SchemaError(
                "MultiwayJoinOp needs one attrs row per input; got "
                f"{len(self.attrs)} rows for {len(self.relations)} inputs"
            )
        for child, row in zip(self.relations, self.attrs):
            if len(row) != child.arity:
                raise ArityError(
                    "MultiwayJoinOp attrs row does not match the input "
                    f"arity: {len(row)} variables for arity {child.arity}"
                )
        variables = {v for row in self.attrs for v in row}
        if len(self.order) != len(variables) or set(self.order) != variables:
            raise SchemaError(
                "MultiwayJoinOp order must be a permutation of the "
                f"join variables {sorted(variables)}; got {self.order}"
            )
        if not self.agm >= 0.0:  # also rejects NaN
            raise SchemaError(
                f"MultiwayJoinOp needs an AGM bound >= 0, got {self.agm}"
            )
        if self.expr.arity != sum(len(row) for row in self.attrs):
            raise ArityError(
                "MultiwayJoinOp logical arity must equal the total "
                f"input arity {sum(len(row) for row in self.attrs)}, "
                f"got {self.expr.arity}"
            )

    @property
    def logical(self) -> Expr:
        return self.expr

    def children(self) -> tuple[PlanNode, ...]:
        return self.relations

    def label(self) -> str:
        order = ">".join(str(v) for v in self.order)
        return f"MultiwayJoin[vars={order},agm={self.agm:g}]"


#: Operator types :class:`PartitionedOp` may wrap.  Hash (semi)joins
#: partition both sides on their equality keys; nested-loop semijoins
#: batch the left side against a replicated right; division partitions
#: the dividend by candidate with a replicated divisor.  (Nested-loop
#: *joins* are excluded: a batch's output is not bounded by its input
#: fragment, so no per-batch budget could be certified; multiway joins
#: are excluded because they never materialize an intermediate to
#: batch — see :class:`MultiwayJoinOp`.)
PARTITIONABLE_OPS = ()  # filled below, after the classes exist


@dataclass(frozen=True)
class PartitionedOp(PlanNode):
    """Batched execution of one operator under a rows-in-flight budget.

    Wraps a partitionable operator (:data:`PARTITIONABLE_OPS`) so the
    executor runs it in hash-partitioned batches instead of one shot:
    each batch *works on* only its input fragments, any replicated
    side, and its own output, and that per-batch working set — the
    quantity ``budget`` caps — is what
    :class:`~repro.engine.partition.PartitionRun` records.  (In this
    in-memory engine the inputs and the accumulated result still
    reside in the process for the whole run; the bounded working-set
    accounting is the contract a spill-to-disk or shard-per-worker
    backend would turn into bounded *memory* — see ``docs/engine.md``
    § Partitioned execution.)  ``partitions`` is the planner's
    *predicted* batch count (from the cost model's sound upper
    bounds); the executor re-packs batches from exact per-key weights
    at run time, so the actual count can differ — both are recorded
    for estimated-vs-actual comparison.
    """

    inner: PlanNode
    partitions: int
    budget: int
    note: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.inner, PARTITIONABLE_OPS):
            raise SchemaError(
                f"PartitionedOp cannot wrap {type(self.inner).__name__}; "
                "partitionable operators are "
                f"{tuple(t.__name__ for t in PARTITIONABLE_OPS)}"
            )
        if self.partitions < 1:
            raise SchemaError("PartitionedOp needs partitions >= 1")
        if self.budget < 1:
            raise SchemaError("PartitionedOp needs a budget >= 1 row")

    @property
    def logical(self) -> Expr:
        return self.inner.logical

    def children(self) -> tuple[PlanNode, ...]:
        return (self.inner,)

    def label(self) -> str:
        return f"Partitioned[k={self.partitions},budget={self.budget}]"


@dataclass(frozen=True)
class ParallelOp(PlanNode):
    """Shard-per-worker execution of one partitionable operator.

    The same key-disjoint batches a :class:`PartitionedOp` would run
    one after another are instead dispatched across a process pool of
    ``workers`` workers.  ``budget`` is the per-batch in-flight bound
    when the operator was partitioned for memory (``None`` when the
    planner parallelized an unpartitioned operator purely for speed,
    in which case batches are sized to balance work across workers).
    ``partitions`` is the planner's batch-count estimate; as with
    :class:`PartitionedOp` the executor re-packs from exact per-key
    weights, so the actual count can differ.
    """

    inner: PlanNode
    partitions: int
    budget: int | None
    workers: int
    note: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.inner, PARTITIONABLE_OPS):
            raise SchemaError(
                f"ParallelOp cannot wrap {type(self.inner).__name__}; "
                "partitionable operators are "
                f"{tuple(t.__name__ for t in PARTITIONABLE_OPS)}"
            )
        if self.partitions < 1:
            raise SchemaError("ParallelOp needs partitions >= 1")
        if self.budget is not None and self.budget < 1:
            raise SchemaError(
                "ParallelOp needs a budget >= 1 row (or None)"
            )
        if self.workers < 1:
            raise SchemaError("ParallelOp needs workers >= 1")

    @property
    def logical(self) -> Expr:
        return self.inner.logical

    def children(self) -> tuple[PlanNode, ...]:
        return (self.inner,)

    def label(self) -> str:
        budget = "none" if self.budget is None else str(self.budget)
        return (
            f"Parallel[k={self.partitions},budget={budget},"
            f"workers={self.workers}]"
        )


@dataclass(frozen=True)
class GroupByOp(PlanNode):
    """γ with grouping positions and aggregates (extended algebra)."""

    child: PlanNode
    expr: Expr  # a repro.extended.ast.GroupBy node
    note: str = ""

    def __post_init__(self) -> None:
        from repro.extended.ast import GroupBy

        if not isinstance(self.expr, GroupBy):
            raise SchemaError("GroupByOp needs a GroupBy logical node")

    @property
    def logical(self) -> Expr:
        return self.expr

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        positions = ",".join(str(p) for p in self.expr.group_positions)
        aggregates = ",".join(str(a) for a in self.expr.aggregates)
        return f"GroupBy[{positions};{aggregates}]"


@dataclass(frozen=True)
class SortOp(PlanNode):
    """Order-by marker: the identity under set semantics."""

    child: PlanNode
    expr: Expr
    note: str = ""

    def __post_init__(self) -> None:
        pass  # the base raises; any constructed SortOp is well-formed

    @property
    def logical(self) -> Expr:
        return self.expr

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return "Sort"


PARTITIONABLE_OPS = (
    HashJoinOp,
    HashSemijoinOp,
    NestedLoopSemijoinOp,
    DivisionOp,
)


def _cached_hash(self) -> int:
    """Hash of the dataclass field tuple, computed once per node.

    The generated frozen-dataclass ``__hash__`` re-hashes the whole
    subtree on every call, which makes memo-dict lookups on deep
    shared plans quadratic-to-exponential; caching keeps them O(1)
    after the first hash (child hashes are themselves cached, so even
    the first full-plan hash is linear in distinct nodes).  Equality
    stays the generated structural one.
    """
    cached = self.__dict__.get("_hash_value")
    if cached is None:
        cached = hash(
            tuple(getattr(self, f.name) for f in fields(self))
        )
        object.__setattr__(self, "_hash_value", cached)
    return cached


for _op in (
    ScanOp,
    UnionOp,
    DifferenceOp,
    ProjectOp,
    FilterOp,
    TagOp,
    HashJoinOp,
    NestedLoopJoinOp,
    HashSemijoinOp,
    NestedLoopSemijoinOp,
    DivisionOp,
    MultiwayJoinOp,
    PartitionedOp,
    ParallelOp,
    GroupByOp,
    SortOp,
):
    _op.__hash__ = _cached_hash
